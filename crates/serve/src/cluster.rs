//! Multi-pool scene sharding: fan one frame's tile-row shards out to
//! several [`DevicePool`]s on a shared simulated clock and merge the
//! partial frame buffers when the last shard lands.
//!
//! One heavy scene can exceed what a single device pool sustains at
//! AR/VR deadlines. A [`ShardedPool`] treats a frame as N tile-range
//! shards (planned by `gbu_render::shard::ShardPlan`): shard `s` is
//! submitted to pool `s` through the tile-range-scoped device entry
//! point, so each shard charges only its range's D&B work and DRAM
//! feature traffic against *its own* pool's bandwidth budget — the
//! multi-GPU deployment where every shard lane is a separate edge SoC.
//! All pools advance in lockstep on one wall clock; the frame completes
//! only when every shard has landed, at which point the partial frame
//! buffers are reassembled into an image bit-identical to the unsharded
//! device render, and the per-shard service times are reported as an
//! imbalance figure (critical path over mean).

use crate::backend::{ExecBackend, ExecCompletion, ExecMode, FrameDone};
use crate::event::SessionId;
use crate::pool::{DevicePool, PoolCompletion};
use crate::scheduler::FrameTicket;
use crate::session::PreparedView;
use gbu_gpu::GpuConfig;
use gbu_hw::GbuConfig;
use gbu_render::shard::{ShardFeedback, ShardPlan, ShardStrategy};
use gbu_render::FrameBuffer;

/// A frame completed by the cluster: all shards landed and merged.
#[derive(Debug)]
pub struct ShardedCompletion {
    /// The request this frame fulfilled.
    pub ticket: FrameTicket,
    /// Wall cycle at which the *last* shard landed.
    pub completed_at: u64,
    /// The merged image — bit-identical to an unsharded device render.
    pub image: FrameBuffer,
    /// Wall-cycle service time of each shard (submit → land), indexed by
    /// shard. The maximum is the frame's critical path.
    pub shard_cycles: Vec<u64>,
    /// Summed off-chip feature traffic across shards. Each shard fetched
    /// only its tile range, so this tracks (and, where Gaussians straddle
    /// shard boundaries, slightly exceeds) the unsharded frame's traffic.
    pub dram_bytes: u64,
    /// Measured imbalance: max shard service time over mean (1.0 =
    /// perfectly balanced shards).
    pub imbalance: f64,
}

#[derive(Debug)]
struct PendingFrame {
    ticket: FrameTicket,
    plan: ShardPlan,
    width: u32,
    height: u32,
    submitted_at: u64,
    /// One slot per shard, filled as pools report completions.
    parts: Vec<Option<PoolCompletion>>,
}

/// N single-frame shard lanes, each its own [`DevicePool`], advanced in
/// lockstep on one simulated wall clock.
#[derive(Debug)]
pub struct ShardedPool {
    pools: Vec<DevicePool>,
    strategy: ShardStrategy,
    pending: Vec<PendingFrame>,
}

impl ShardedPool {
    /// Creates a cluster of `shards` pools with `devices_per_pool` GBUs
    /// each. Every pool owns its own DRAM budget (`dram_share` of one
    /// host GPU's LPDDR bandwidth) — shard lanes model separate edge
    /// SoCs, not co-tenants of one bus.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0` (and transitively when
    /// `devices_per_pool == 0`).
    pub fn new(
        shards: usize,
        devices_per_pool: usize,
        strategy: ShardStrategy,
        gbu: &GbuConfig,
        gpu: &GpuConfig,
        dram_share: f64,
    ) -> Self {
        assert!(shards > 0, "a cluster needs at least one shard lane");
        Self {
            pools: (0..shards)
                .map(|_| DevicePool::new(devices_per_pool, gbu, gpu, dram_share))
                .collect(),
            strategy,
            pending: Vec::new(),
        }
    }

    /// Number of shard lanes.
    pub fn shard_count(&self) -> usize {
        self.pools.len()
    }

    /// The shard strategy frames are split with.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Current wall cycle (all lanes advance in lockstep).
    pub fn clock(&self) -> u64 {
        self.pools[0].clock()
    }

    /// Number of frames with at least one shard still in flight.
    pub fn pending_frames(&self) -> usize {
        self.pending.len()
    }

    /// `true` when every shard lane has an idle device for a new frame.
    pub fn can_accept(&self) -> bool {
        self.pools.iter().all(|p| p.idle_device().is_some())
    }

    /// Mean device utilization across all lanes so far.
    pub fn utilization(&self) -> f64 {
        self.pools.iter().map(DevicePool::utilization).sum::<f64>() / self.pools.len() as f64
    }

    /// Splits `view` into tile-row shards and fans them out, one shard
    /// per lane, all stamped with `ticket`. The frame will complete only
    /// when every shard lands.
    ///
    /// Returns the plan's predicted imbalance (max planned shard cost
    /// over mean), which the serving layer can report before the frame
    /// even runs.
    ///
    /// # Panics
    ///
    /// Panics when some lane has no idle device (check
    /// [`ShardedPool::can_accept`] first) or when a frame with the same
    /// ticket id is already pending.
    pub fn submit(&mut self, view: &PreparedView, ticket: FrameTicket) -> f64 {
        assert!(
            self.pending.iter().all(|p| p.ticket.id != ticket.id),
            "ticket {:?} already has shards in flight",
            ticket.id
        );
        let plan = ShardPlan::new(self.strategy, &view.bins, self.pools.len());
        let submitted_at = self.clock();
        for (s, pool) in self.pools.iter_mut().enumerate() {
            let device = pool.idle_device().expect("submit requires an idle device per lane");
            let shard_bins = plan.shard_bins(&view.bins, s);
            pool.submit_scoped(device, &view.splats, &shard_bins, &view.camera, ticket);
        }
        let predicted = plan.planned_imbalance();
        self.pending.push(PendingFrame {
            ticket,
            plan,
            width: view.camera.width,
            height: view.camera.height,
            submitted_at,
            parts: (0..self.pools.len()).map(|_| None).collect(),
        });
        predicted
    }

    /// Wall cycles until the next shard lands anywhere in the cluster,
    /// or `None` when everything is idle.
    pub fn next_completion_dt(&self) -> Option<u64> {
        self.pools.iter().filter_map(DevicePool::next_completion_dt).min()
    }

    /// Advances every lane by `wall_dt` cycles in lockstep, collecting
    /// the frames whose *last* shard landed during the interval. Frames
    /// with shards still in flight stay pending.
    ///
    /// # Panics
    ///
    /// Panics when `wall_dt == 0` (the shared clock must move forward).
    pub fn advance(&mut self, wall_dt: u64) -> Vec<ShardedCompletion> {
        for (s, pool) in self.pools.iter_mut().enumerate() {
            for completion in pool.advance(wall_dt) {
                let pending = self
                    .pending
                    .iter_mut()
                    .find(|p| p.ticket.id == completion.ticket.id)
                    .expect("every shard completion belongs to a pending frame");
                debug_assert!(pending.parts[s].is_none(), "one completion per shard lane");
                pending.parts[s] = Some(completion);
            }
        }

        let mut done = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].parts.iter().all(Option::is_some) {
                done.push(Self::seal(self.pending.swap_remove(i)));
            } else {
                i += 1;
            }
        }
        // swap_remove disorders the pending list; completions are sorted
        // back into landing order for deterministic event streams.
        done.sort_by_key(|c| (c.completed_at, c.ticket.id));
        done
    }

    /// Merges a fully-landed frame's shard partials into one completion.
    fn seal(pending: PendingFrame) -> ShardedCompletion {
        let PendingFrame { ticket, plan, width, height, submitted_at, parts } = pending;
        let parts: Vec<PoolCompletion> =
            parts.into_iter().map(|p| p.expect("all shards landed")).collect();
        let completed_at = parts.iter().map(|p| p.completed_at).max().expect("at least one shard");
        let shard_cycles: Vec<u64> = parts.iter().map(|p| p.completed_at - submitted_at).collect();
        let dram_bytes = parts.iter().map(|p| p.frame.run.dram_bytes).sum();
        let imbalance = crate::backend::shard_imbalance(&shard_cycles).expect("at least one shard");
        let image = merge_part_images(&plan, width, height, &parts);
        ShardedCompletion { ticket, completed_at, image, shard_cycles, dram_bytes, imbalance }
    }
}

/// Reassembles a frame from its shard partials: every shard's device
/// image is full-size with background outside its rows; copy each
/// shard's row bands over shard 0's image. Bit-identical to the
/// unsharded device render (the per-row kernels are the same code).
fn merge_part_images(
    plan: &ShardPlan,
    width: u32,
    height: u32,
    parts: &[PoolCompletion],
) -> FrameBuffer {
    let mut image = parts[0].frame.image.clone();
    let w = width as usize;
    for (s, part) in parts.iter().enumerate() {
        if s == 0 {
            continue;
        }
        let src = &part.frame.image;
        for &ty in &plan.shards[s].rows {
            let y0 = ty * plan.tile_size;
            let y1 = ((ty + 1) * plan.tile_size).min(height);
            let lo = y0 as usize * w;
            let hi = y1 as usize * w;
            image.pixels_mut()[lo..hi].copy_from_slice(&src.pixels()[lo..hi]);
        }
    }
    image
}

/// One sharded frame mid-flight on the cluster backend.
#[derive(Debug)]
struct PendingMixed {
    ticket: FrameTicket,
    plan: ShardPlan,
    width: u32,
    height: u32,
    submitted_at: u64,
    /// Lane each shard executes on (`lane_of_shard[s]`); a frame's
    /// shards occupy distinct lanes.
    lane_of_shard: Vec<usize>,
    /// Device occupancy (`max(D&B, Tile PE)` cycles) of each shard,
    /// read at submission — the contention-free measured service that
    /// feeds [`ShardStrategy::Measured`] replanning.
    occupancy_of_shard: Vec<u64>,
    /// One slot per shard, filled as lanes report completions.
    parts: Vec<Option<PoolCompletion>>,
}

/// The cluster-mode [`ExecBackend`]: N independent [`DevicePool`] lanes
/// on one lockstep wall clock, executing [`ExecMode::Unsharded`] frames
/// on a single lane and [`ExecMode::Sharded`] frames fanned over the
/// least-busy `shards` lanes — mixed freely on one clock.
///
/// Sharded frames report one [`ExecCompletion::Shard`] per landed shard
/// before the merged [`ExecCompletion::Frame`]; per-session
/// [`ShardFeedback`] (shard rows + measured occupancies) is retained so
/// [`ShardStrategy::Measured`] can rebalance each next frame's plan.
#[derive(Debug)]
pub struct ClusterBackend {
    lanes: Vec<DevicePool>,
    devices_per_lane: usize,
    pending: Vec<PendingMixed>,
    /// Last executed plan + measured shard occupancies, by session index.
    feedback: Vec<Option<ShardFeedback>>,
    /// Which lanes are up. A dead lane is masked, never removed: its
    /// pool keeps ticking (idle) so the lockstep clock and stable lane
    /// indices survive any kill/restore schedule.
    alive: Vec<bool>,
    /// Restart generation per lane: 0 for the first lifetime, bumped on
    /// every restore.
    generation: Vec<u32>,
    /// Preferred home lane per session index (the fleet controller's
    /// migration lever); advisory — a dead or full home falls back to
    /// least-busy placement.
    affinity: Vec<Option<usize>>,
}

impl ClusterBackend {
    /// Creates a cluster of `lanes` pools with `devices_per_lane` GBUs
    /// each; every lane owns its own DRAM budget (`dram_share` of one
    /// host GPU's LPDDR bandwidth) — lanes model separate edge SoCs.
    ///
    /// # Panics
    ///
    /// Panics when `lanes == 0` (and transitively when
    /// `devices_per_lane == 0`).
    pub fn new(
        lanes: usize,
        devices_per_lane: usize,
        gbu: &GbuConfig,
        gpu: &GpuConfig,
        dram_share: f64,
    ) -> Self {
        assert!(lanes > 0, "a cluster needs at least one lane");
        Self {
            lanes: (0..lanes)
                .map(|_| DevicePool::new(devices_per_lane, gbu, gpu, dram_share))
                .collect(),
            devices_per_lane,
            pending: Vec::new(),
            feedback: Vec::new(),
            alive: vec![true; lanes],
            generation: vec![0; lanes],
            affinity: Vec::new(),
        }
    }

    /// The measured feedback retained for `session`, if any frame of its
    /// has completed sharded yet.
    pub fn session_feedback(&self, session: SessionId) -> Option<&ShardFeedback> {
        self.feedback.get(session.index()).and_then(Option::as_ref)
    }

    /// Live lanes with an idle device, ordered by (busy devices, lane
    /// index): the deterministic placement order for new frames.
    fn placement_order(&self) -> Vec<usize> {
        let mut open: Vec<usize> = (0..self.lanes.len())
            .filter(|&l| self.alive[l] && self.lanes[l].idle_device().is_some())
            .collect();
        open.sort_by_key(|&l| (self.lanes[l].busy_count(), l));
        open
    }
}

impl ExecBackend for ClusterBackend {
    fn clock(&self) -> u64 {
        self.lanes[0].clock()
    }

    fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    fn device_count(&self) -> usize {
        self.lanes.len() * self.devices_per_lane
    }

    fn in_flight_frames(&self) -> usize {
        let shard_busy: usize =
            self.pending.iter().map(|p| p.parts.iter().filter(|part| part.is_none()).count()).sum();
        let busy: usize = self.lanes.iter().map(DevicePool::busy_count).sum();
        busy - shard_busy + self.pending.len()
    }

    fn utilization(&self) -> f64 {
        self.lanes.iter().map(DevicePool::utilization).sum::<f64>() / self.lanes.len() as f64
    }

    fn can_accept(&self, mode: ExecMode) -> bool {
        let open = self.open_lane_count();
        mode.lanes_needed() <= open && mode.lanes_needed() >= 1
    }

    fn submit(&mut self, view: &PreparedView, ticket: FrameTicket, mode: ExecMode) -> usize {
        self.submit_with_prep(view, ticket, mode, 0)
    }

    fn submit_with_prep(
        &mut self,
        view: &PreparedView,
        ticket: FrameTicket,
        mode: ExecMode,
        prep_cycles: u64,
    ) -> usize {
        match mode {
            ExecMode::Unsharded => {
                let home = self
                    .affinity
                    .get(ticket.session.index())
                    .copied()
                    .flatten()
                    .filter(|&l| self.alive[l] && self.lanes[l].idle_device().is_some());
                let lane = home.unwrap_or_else(|| {
                    *self
                        .placement_order()
                        .first()
                        .expect("submit requires a lane with an idle device")
                });
                let device =
                    self.lanes[lane].idle_device().expect("placement order holds open lanes");
                self.lanes[lane].submit_with_prep(device, view, ticket, prep_cycles);
                lane * self.devices_per_lane + device
            }
            ExecMode::Sharded { shards, strategy } => {
                assert!(
                    self.pending.iter().all(|p| p.ticket.id != ticket.id),
                    "ticket {:?} already has shards in flight",
                    ticket.id
                );
                let order = self.placement_order();
                assert!(
                    shards >= 1 && shards <= order.len(),
                    "a {shards}-shard frame needs that many open lanes ({} open)",
                    order.len()
                );
                let lane_of_shard: Vec<usize> = order[..shards].to_vec();
                let feedback = match strategy {
                    ShardStrategy::Measured => self
                        .feedback
                        .get(ticket.session.index())
                        .and_then(Option::as_ref)
                        // A shard-count change invalidates the old plan's
                        // per-shard measurement mapping only partially
                        // (per-row costs still transfer); keep it.
                        .cloned(),
                    _ => None,
                };
                let plan =
                    ShardPlan::with_feedback(strategy, &view.bins, shards, feedback.as_ref());
                let submitted_at = self.clock();
                let mut occupancy_of_shard = Vec::with_capacity(shards);
                let mut first_device = 0;
                for (s, &lane) in lane_of_shard.iter().enumerate() {
                    let device =
                        self.lanes[lane].idle_device().expect("placement order holds open lanes");
                    let shard_bins = plan.shard_bins(&view.bins, s);
                    // Every shard waits for the host's full Step-❶/❷
                    // pass — prep is not divisible across shards.
                    self.lanes[lane].submit_scoped_with_prep(
                        device,
                        &view.splats,
                        &shard_bins,
                        &view.camera,
                        ticket,
                        prep_cycles,
                    );
                    occupancy_of_shard.push(
                        self.lanes[lane]
                            .in_flight_occupancy(device)
                            .expect("shard was just submitted"),
                    );
                    if s == 0 {
                        first_device = lane * self.devices_per_lane + device;
                    }
                }
                self.pending.push(PendingMixed {
                    ticket,
                    plan,
                    width: view.camera.width,
                    height: view.camera.height,
                    submitted_at,
                    lane_of_shard,
                    occupancy_of_shard,
                    parts: (0..shards).map(|_| None).collect(),
                });
                first_device
            }
        }
    }

    fn cancel_session(&mut self, session: SessionId) -> Vec<FrameTicket> {
        let mut cancelled = Vec::new();
        // Sharded frames first: cancel every unlanded shard on its lane,
        // discard landed partials, retire the pending entry.
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].ticket.session != session {
                i += 1;
                continue;
            }
            let p = self.pending.remove(i);
            for (s, &lane) in p.lane_of_shard.iter().enumerate() {
                if p.parts[s].is_some() {
                    continue; // this shard already landed
                }
                let device = (0..self.lanes[lane].len())
                    .find(|&d| {
                        self.lanes[lane].active_ticket(d).is_some_and(|t| t.id == p.ticket.id)
                    })
                    .expect("unlanded shard is active on its lane");
                self.lanes[lane].cancel(device).expect("active ticket was just observed");
            }
            cancelled.push(p.ticket);
        }
        // Then plain unsharded frames of the session.
        for lane in &mut self.lanes {
            for device in 0..lane.len() {
                if lane.active_ticket(device).is_some_and(|t| t.session == session) {
                    cancelled.push(lane.cancel(device).expect("active ticket was just observed"));
                }
            }
        }
        cancelled
    }

    fn next_completion_dt(&self) -> Option<u64> {
        self.lanes.iter().filter_map(DevicePool::next_completion_dt).min()
    }

    fn advance(&mut self, wall_dt: u64) -> Vec<ExecCompletion> {
        let mut shard_events = Vec::new();
        let mut unsharded_done = Vec::new();
        for (lane_idx, lane) in self.lanes.iter_mut().enumerate() {
            for completion in lane.advance(wall_dt) {
                let pending = self.pending.iter_mut().find(|p| p.ticket.id == completion.ticket.id);
                match pending {
                    Some(p) => {
                        let shard = p
                            .lane_of_shard
                            .iter()
                            .position(|&l| l == lane_idx)
                            .expect("completion lane is one of the frame's shard lanes");
                        debug_assert!(p.parts[shard].is_none(), "one completion per shard");
                        shard_events.push(ExecCompletion::Shard {
                            ticket: p.ticket,
                            shard,
                            lane: lane_idx,
                            at: completion.completed_at,
                            service_cycles: completion.completed_at - p.submitted_at,
                        });
                        p.parts[shard] = Some(completion);
                    }
                    None => unsharded_done.push(FrameDone {
                        ticket: completion.ticket,
                        completed_at: completion.completed_at,
                        image: completion.frame.image,
                        shard_cycles: Vec::new(),
                    }),
                }
            }
        }

        // Seal sharded frames whose last shard just landed (in
        // submission order — all same-advance completions share one
        // timestamp, so any deterministic order is exact).
        let mut sharded_done = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].parts.iter().any(Option::is_none) {
                i += 1;
                continue;
            }
            let p = self.pending.remove(i);
            let parts: Vec<PoolCompletion> =
                p.parts.into_iter().map(|part| part.expect("all shards landed")).collect();
            let completed_at =
                parts.iter().map(|c| c.completed_at).max().expect("at least one shard");
            let shard_cycles: Vec<u64> =
                parts.iter().map(|c| c.completed_at - p.submitted_at).collect();
            let image = merge_part_images(&p.plan, p.width, p.height, &parts);
            // Retain the measurement for the session's next Measured plan.
            let idx = p.ticket.session.index();
            if self.feedback.len() <= idx {
                self.feedback.resize_with(idx + 1, || None);
            }
            self.feedback[idx] = Some(ShardFeedback {
                rows: p.plan.shards.iter().map(|s| s.rows.clone()).collect(),
                measured_cycles: p.occupancy_of_shard,
            });
            sharded_done.push(FrameDone { ticket: p.ticket, completed_at, image, shard_cycles });
        }

        shard_events
            .into_iter()
            .chain(unsharded_done.into_iter().map(ExecCompletion::Frame))
            .chain(sharded_done.into_iter().map(ExecCompletion::Frame))
            .collect()
    }

    /// Live lanes only: a dead lane contributes no capacity, but leaving
    /// it out (rather than reporting it as infinitely backed up) keeps
    /// the admission estimate optimistic — a rejection stays a proof of
    /// unmeetability even if the lane is restored a cycle later.
    fn lane_backlogs_into(&self, out: &mut Vec<Vec<u64>>) {
        out.resize_with(self.live_lane_count(), Vec::new);
        let mut i = 0;
        for (lane, pool) in self.lanes.iter().enumerate() {
            if self.alive[lane] {
                pool.in_flight_backlog_into(&mut out[i]);
                i += 1;
            }
        }
    }

    fn lane_alive(&self, lane: usize) -> bool {
        self.alive[lane]
    }

    fn live_lane_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    fn open_lane_count(&self) -> usize {
        (0..self.lanes.len())
            .filter(|&l| self.alive[l] && self.lanes[l].idle_device().is_some())
            .count()
    }

    fn kill_lane(&mut self, lane: usize) -> Vec<FrameTicket> {
        if !self.alive[lane] {
            return Vec::new();
        }
        let mut cancelled = Vec::new();
        // Sharded frames with *any* shard on the dying lane lose the
        // whole frame: its partial framebuffer lives in the dead lane's
        // memory, so landed shards are as lost as in-flight ones. Cancel
        // every unlanded shard wherever it runs and retire the entry.
        let mut i = 0;
        while i < self.pending.len() {
            if !self.pending[i].lane_of_shard.contains(&lane) {
                i += 1;
                continue;
            }
            let p = self.pending.remove(i);
            for (s, &l) in p.lane_of_shard.iter().enumerate() {
                if p.parts[s].is_some() {
                    continue; // this shard already landed
                }
                let device = (0..self.lanes[l].len())
                    .find(|&d| self.lanes[l].active_ticket(d).is_some_and(|t| t.id == p.ticket.id))
                    .expect("unlanded shard is active on its lane");
                self.lanes[l].cancel(device).expect("active ticket was just observed");
            }
            cancelled.push(p.ticket);
        }
        // Then the unsharded frames executing on the lane itself.
        for device in 0..self.lanes[lane].len() {
            if self.lanes[lane].active_ticket(device).is_some() {
                cancelled.push(
                    self.lanes[lane].cancel(device).expect("active ticket was just observed"),
                );
            }
        }
        self.alive[lane] = false;
        cancelled
    }

    fn restore_lane(&mut self, lane: usize) {
        if self.alive[lane] {
            return;
        }
        self.alive[lane] = true;
        self.generation[lane] += 1;
        self.lanes[lane].set_lane_generation(self.generation[lane]);
    }

    fn lane_generation(&self, lane: usize) -> u32 {
        self.generation[lane]
    }

    fn set_lane_affinity(&mut self, session: SessionId, lane: Option<usize>) {
        let idx = session.index();
        if self.affinity.len() <= idx {
            if lane.is_none() {
                return;
            }
            self.affinity.resize(idx + 1, None);
        }
        self.affinity[idx] = lane;
    }

    fn set_telemetry(&mut self, recorder: &gbu_telemetry::Recorder) {
        for (lane, pool) in self.lanes.iter_mut().enumerate() {
            pool.attach_recorder(recorder.clone(), Some(lane as u32));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Session, SessionContent, SessionSpec};
    use crate::QosTarget;
    use gbu_core::Gbu;
    use gbu_math::Vec3;

    fn prepared() -> Session {
        Session::prepare(
            SessionSpec {
                name: "cluster".into(),
                content: SessionContent::Synthetic { seed: 11, gaussians: 160 },
                qos: QosTarget::VR_72,
                frames: 2,
                phase: 0.0,
                exec: ExecMode::Unsharded,
            },
            &GbuConfig::paper(),
        )
    }

    fn ticket(n: u32) -> FrameTicket {
        FrameTicket {
            id: crate::FrameId::from_index(u64::from(n)),
            session: crate::SessionId::from_index(0),
            frame: n,
            arrival: 0,
            deadline: u64::MAX,
        }
    }

    fn drain(pool: &mut ShardedPool) -> Vec<ShardedCompletion> {
        let mut done = Vec::new();
        while let Some(dt) = pool.next_completion_dt() {
            done.extend(pool.advance(dt));
        }
        done
    }

    fn unsharded_baseline(session: &Session) -> (FrameBuffer, u64) {
        let view = session.view(0);
        let mut gbu = Gbu::new(GbuConfig::paper());
        gbu.render_image(&view.splats, &view.bins, &view.camera, Vec3::ZERO).unwrap();
        let occupancy = gbu.in_flight_remaining().expect("frame in flight");
        (gbu.wait().expect("frame in flight").image, occupancy)
    }

    #[test]
    fn sharded_frame_is_bit_identical_to_single_device() {
        let session = prepared();
        let (reference, _) = unsharded_baseline(&session);
        for strategy in ShardStrategy::all() {
            for shards in [1usize, 2, 4] {
                let mut cluster = ShardedPool::new(
                    shards,
                    1,
                    strategy,
                    &GbuConfig::paper(),
                    &GpuConfig::orin_nx(),
                    0.5,
                );
                assert!(cluster.can_accept());
                cluster.submit(session.view(0), ticket(0));
                let mut done = drain(&mut cluster);
                assert_eq!(done.len(), 1, "{strategy:?}/{shards}");
                let c = done.remove(0);
                assert_eq!(
                    c.image.pixels(),
                    reference.pixels(),
                    "{strategy:?}/{shards}: merged image must be bit-identical"
                );
                assert_eq!(c.shard_cycles.len(), shards);
                assert!(c.imbalance >= 1.0 - 1e-12);
                assert!(c.dram_bytes > 0);
            }
        }
    }

    #[test]
    fn frame_completes_only_when_all_shards_land() {
        let session = prepared();
        let mut cluster = ShardedPool::new(
            4,
            1,
            ShardStrategy::ContiguousRows,
            &GbuConfig::paper(),
            &GpuConfig::orin_nx(),
            0.5,
        );
        cluster.submit(session.view(0), ticket(0));
        assert_eq!(cluster.pending_frames(), 1);
        // Advance to the first shard landing: unless every shard happens
        // to land on the same cycle, the frame must still be pending.
        let first = cluster.next_completion_dt().expect("shards in flight");
        let done = cluster.advance(first);
        if !done.is_empty() {
            // Degenerate (all shards equal): still a valid completion.
            assert_eq!(done[0].shard_cycles.len(), 4);
            return;
        }
        assert_eq!(cluster.pending_frames(), 1, "frame gates on the last shard");
        let done = drain(&mut cluster);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].completed_at, cluster.clock());
        assert_eq!(cluster.pending_frames(), 0);
    }

    #[test]
    fn sharding_shortens_the_critical_path() {
        let session = prepared();
        let (_, unsharded_cycles) = unsharded_baseline(&session);
        let mut cluster = ShardedPool::new(
            4,
            1,
            ShardStrategy::CostBalanced,
            &GbuConfig::paper(),
            &GpuConfig::orin_nx(),
            0.5,
        );
        cluster.submit(session.view(0), ticket(0));
        let done = drain(&mut cluster);
        assert!(
            done[0].completed_at < unsharded_cycles,
            "4 shard lanes must beat one device: {} vs {unsharded_cycles}",
            done[0].completed_at
        );
    }

    #[test]
    fn lanes_pipeline_independent_frames() {
        let session = prepared();
        let mut cluster = ShardedPool::new(
            2,
            2,
            ShardStrategy::InterleavedRows,
            &GbuConfig::paper(),
            &GpuConfig::orin_nx(),
            0.5,
        );
        // Two frames in flight at once: each lane has two devices.
        cluster.submit(session.view(0), ticket(0));
        assert!(cluster.can_accept(), "second device per lane is idle");
        cluster.submit(session.view(1), ticket(1));
        assert!(!cluster.can_accept());
        let done = drain(&mut cluster);
        assert_eq!(done.len(), 2);
        let mut ids: Vec<u64> = done.iter().map(|c| c.ticket.id.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
        let u = cluster.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    #[should_panic(expected = "idle device per lane")]
    fn oversubmission_panics() {
        let session = prepared();
        let mut cluster = ShardedPool::new(
            2,
            1,
            ShardStrategy::ContiguousRows,
            &GbuConfig::paper(),
            &GpuConfig::orin_nx(),
            0.5,
        );
        cluster.submit(session.view(0), ticket(0));
        cluster.submit(session.view(1), ticket(1));
    }

    // ------------------------------------------------------------------
    // ClusterBackend (the ExecBackend implementation)
    // ------------------------------------------------------------------

    fn cluster_backend(lanes: usize, devices_per_lane: usize) -> ClusterBackend {
        ClusterBackend::new(
            lanes,
            devices_per_lane,
            &GbuConfig::paper(),
            &GpuConfig::orin_nx(),
            0.5,
        )
    }

    fn drain_backend(backend: &mut ClusterBackend) -> Vec<ExecCompletion> {
        let mut out = Vec::new();
        while let Some(dt) = ExecBackend::next_completion_dt(backend) {
            out.extend(backend.advance(dt));
        }
        out
    }

    #[test]
    fn backend_mixes_sharded_and_unsharded_frames() {
        let session = prepared();
        let (reference, _) = unsharded_baseline(&session);
        let mut backend = cluster_backend(3, 1);
        assert_eq!(backend.lane_count(), 3);
        assert_eq!(backend.device_count(), 3);

        let sharded = ExecMode::Sharded { shards: 2, strategy: ShardStrategy::CostBalanced };
        assert!(backend.can_accept(sharded));
        backend.submit(session.view(0), ticket(0), sharded);
        assert!(backend.can_accept(ExecMode::Unsharded), "one lane still open");
        assert!(!backend.can_accept(sharded), "only one open lane left");
        backend.submit(session.view(0), ticket(1), ExecMode::Unsharded);
        assert!(!backend.can_accept(ExecMode::Unsharded));
        assert_eq!(backend.in_flight_frames(), 2);

        let completions = drain_backend(&mut backend);
        let shard_events: Vec<_> =
            completions.iter().filter(|c| matches!(c, ExecCompletion::Shard { .. })).collect();
        assert_eq!(shard_events.len(), 2, "one event per shard of the sharded frame");
        let frames: Vec<&FrameDone> = completions
            .iter()
            .filter_map(|c| match c {
                ExecCompletion::Frame(done) => Some(done),
                ExecCompletion::Shard { .. } => None,
            })
            .collect();
        assert_eq!(frames.len(), 2);
        for done in frames {
            assert_eq!(
                done.image.pixels(),
                reference.pixels(),
                "both modes must produce the identical image"
            );
            match done.ticket.id.index() {
                0 => {
                    assert_eq!(done.shard_cycles.len(), 2);
                    assert!(done.imbalance().expect("sharded") >= 1.0 - 1e-12);
                }
                _ => assert!(done.shard_cycles.is_empty()),
            }
        }
        assert_eq!(backend.in_flight_frames(), 0);
    }

    #[test]
    fn shard_events_precede_their_frame_completion() {
        let session = prepared();
        let mut backend = cluster_backend(4, 1);
        backend.submit(
            session.view(0),
            ticket(0),
            ExecMode::Sharded { shards: 4, strategy: ShardStrategy::ContiguousRows },
        );
        let completions = drain_backend(&mut backend);
        let frame_pos = completions
            .iter()
            .position(|c| matches!(c, ExecCompletion::Frame(_)))
            .expect("frame completed");
        let shard_positions: Vec<usize> = completions
            .iter()
            .enumerate()
            .filter_map(|(i, c)| matches!(c, ExecCompletion::Shard { .. }).then_some(i))
            .collect();
        assert_eq!(shard_positions.len(), 4);
        assert!(shard_positions.iter().all(|&p| p < frame_pos), "shards land before the frame");
    }

    #[test]
    fn backend_cancel_session_reclaims_all_shards() {
        let session = prepared();
        let mut backend = cluster_backend(2, 1);
        backend.submit(
            session.view(0),
            ticket(0),
            ExecMode::Sharded { shards: 2, strategy: ShardStrategy::InterleavedRows },
        );
        assert_eq!(backend.in_flight_frames(), 1);
        let cancelled = backend.cancel_session(crate::SessionId::from_index(0));
        assert_eq!(cancelled.len(), 1, "one frame, however many shards");
        assert_eq!(backend.in_flight_frames(), 0);
        assert!(ExecBackend::next_completion_dt(&backend).is_none());
        assert!(backend
            .can_accept(ExecMode::Sharded { shards: 2, strategy: ShardStrategy::InterleavedRows }));
        // Other sessions' frames survive a cancel.
        backend.submit(session.view(0), ticket(1), ExecMode::Unsharded);
        assert!(backend.cancel_session(crate::SessionId::from_index(9)).is_empty());
        assert_eq!(backend.in_flight_frames(), 1);
    }

    #[test]
    fn measured_feedback_is_retained_per_session() {
        let session = prepared();
        let mut backend = cluster_backend(2, 1);
        let mode = ExecMode::Sharded { shards: 2, strategy: ShardStrategy::Measured };
        let sid = crate::SessionId::from_index(0);
        assert!(backend.session_feedback(sid).is_none(), "no history before the first frame");
        backend.submit(session.view(0), ticket(0), mode);
        drain_backend(&mut backend);
        let fb = backend.session_feedback(sid).expect("feedback after first completion");
        assert_eq!(fb.rows.len(), 2);
        assert_eq!(fb.measured_cycles.len(), 2);
        assert!(fb.measured_cycles.iter().all(|&c| c > 0));
        // A second frame replans with the measurement and still merges
        // bit-identically.
        let (reference, _) = unsharded_baseline(&session);
        backend.submit(session.view(0), ticket(1), mode);
        let completions = drain_backend(&mut backend);
        let done = completions
            .iter()
            .find_map(|c| match c {
                ExecCompletion::Frame(done) => Some(done),
                ExecCompletion::Shard { .. } => None,
            })
            .expect("frame completed");
        assert_eq!(done.image.pixels(), reference.pixels());
    }

    #[test]
    fn kill_lane_reclaims_whole_sharded_frames() {
        let session = prepared();
        let mut backend = cluster_backend(3, 1);
        let sharded = ExecMode::Sharded { shards: 2, strategy: ShardStrategy::ContiguousRows };
        backend.submit(session.view(0), ticket(0), sharded);
        backend.submit(session.view(0), ticket(1), ExecMode::Unsharded);
        assert_eq!(backend.in_flight_frames(), 2);

        // The sharded frame occupies lanes 0 and 1; killing lane 1 must
        // reclaim the whole frame (including its shard on lane 0) while
        // the unsharded frame on lane 2 survives.
        let cancelled = backend.kill_lane(1);
        assert_eq!(cancelled.len(), 1);
        assert_eq!(cancelled[0].id.index(), 0);
        assert_eq!(backend.in_flight_frames(), 1);
        assert!(!backend.lane_alive(1));
        assert_eq!(backend.live_lane_count(), 2);
        assert_eq!(backend.lane_backlogs().len(), 2, "dead lanes leave the backlog view");
        assert!(!backend.can_accept(sharded), "one open live lane left");
        assert!(backend.can_accept(ExecMode::Unsharded));

        // Killing a dead lane is a no-op; restoring bumps its generation.
        assert!(backend.kill_lane(1).is_empty());
        assert_eq!(backend.lane_generation(1), 0);
        backend.restore_lane(1);
        assert!(backend.lane_alive(1));
        assert_eq!(backend.lane_generation(1), 1);
        assert!(backend.can_accept(sharded));

        // The survivor still completes after the churn.
        let frames = drain_backend(&mut backend)
            .into_iter()
            .filter(|c| matches!(c, ExecCompletion::Frame(_)))
            .count();
        assert_eq!(frames, 1);
    }

    #[test]
    fn dead_lanes_keep_the_lockstep_clock() {
        let session = prepared();
        let mut backend = cluster_backend(2, 1);
        // Lane 0 is the clock source; kill it and run a frame on lane 1.
        backend.kill_lane(0);
        backend.submit(session.view(0), ticket(0), ExecMode::Unsharded);
        let done = drain_backend(&mut backend);
        assert_eq!(done.len(), 1);
        let t = ExecBackend::clock(&backend);
        assert!(t > 0, "dead lane 0 still ticks the shared clock");
        // A restored lane rejoins at the shared clock, not at zero.
        backend.restore_lane(0);
        backend.submit(session.view(0), ticket(1), ExecMode::Unsharded);
        let done = drain_backend(&mut backend);
        assert_eq!(done.len(), 1);
        let ExecCompletion::Frame(f) = &done[0] else { panic!("unsharded completion") };
        assert!(f.completed_at > t, "restored lane completes in the shared time domain");
    }

    #[test]
    fn affinity_steers_unsharded_placement() {
        let session = prepared();
        let mut backend = cluster_backend(2, 1);
        let sid = crate::SessionId::from_index(0);
        // Least-busy placement would pick lane 0; affinity overrides.
        backend.set_lane_affinity(sid, Some(1));
        let device = backend.submit(session.view(0), ticket(0), ExecMode::Unsharded);
        assert_eq!(device, 1, "home lane 1, device 0 of 1 per lane");
        drain_backend(&mut backend);
        // A dead home lane falls back to least-busy placement.
        backend.kill_lane(1);
        let device = backend.submit(session.view(0), ticket(1), ExecMode::Unsharded);
        assert_eq!(device, 0);
        drain_backend(&mut backend);
        // Clearing the pin restores least-busy placement.
        backend.restore_lane(1);
        backend.set_lane_affinity(sid, None);
        let device = backend.submit(session.view(0), ticket(2), ExecMode::Unsharded);
        assert_eq!(device, 0);
    }

    #[test]
    fn measured_feedback_survives_lane_churn() {
        let session = prepared();
        let mut backend = cluster_backend(2, 1);
        let mode = ExecMode::Sharded { shards: 2, strategy: ShardStrategy::Measured };
        let sid = crate::SessionId::from_index(0);
        backend.submit(session.view(0), ticket(0), mode);
        drain_backend(&mut backend);
        assert!(backend.session_feedback(sid).is_some());
        backend.kill_lane(0);
        backend.restore_lane(0);
        assert!(
            backend.session_feedback(sid).is_some(),
            "feedback is per-session state, not per-lane state"
        );
    }

    #[test]
    fn single_lane_backend_matches_device_pool() {
        // A 1-lane cluster driving unsharded frames is the single pool in
        // disguise: identical completion times and device placement.
        let session = prepared();
        let mut pool = DevicePool::new(2, &GbuConfig::paper(), &GpuConfig::orin_nx(), 0.5);
        let mut backend = cluster_backend(1, 2);
        ExecBackend::submit(&mut pool, session.view(0), ticket(0), ExecMode::Unsharded);
        ExecBackend::submit(&mut pool, session.view(1), ticket(1), ExecMode::Unsharded);
        backend.submit(session.view(0), ticket(0), ExecMode::Unsharded);
        backend.submit(session.view(1), ticket(1), ExecMode::Unsharded);
        loop {
            let a = ExecBackend::next_completion_dt(&pool);
            let b = ExecBackend::next_completion_dt(&backend);
            assert_eq!(a, b, "lockstep completion schedule");
            let Some(dt) = a else { break };
            let pa = ExecBackend::advance(&mut pool, dt);
            let pb = backend.advance(dt);
            assert_eq!(pa.len(), pb.len());
            for (x, y) in pa.iter().zip(&pb) {
                let (ExecCompletion::Frame(x), ExecCompletion::Frame(y)) = (x, y) else {
                    panic!("unsharded backends emit only frame completions");
                };
                assert_eq!(x.ticket, y.ticket);
                assert_eq!(x.completed_at, y.completed_at);
            }
        }
    }
}
