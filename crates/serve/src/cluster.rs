//! Multi-pool scene sharding: fan one frame's tile-row shards out to
//! several [`DevicePool`]s on a shared simulated clock and merge the
//! partial frame buffers when the last shard lands.
//!
//! One heavy scene can exceed what a single device pool sustains at
//! AR/VR deadlines. A [`ShardedPool`] treats a frame as N tile-range
//! shards (planned by `gbu_render::shard::ShardPlan`): shard `s` is
//! submitted to pool `s` through the tile-range-scoped device entry
//! point, so each shard charges only its range's D&B work and DRAM
//! feature traffic against *its own* pool's bandwidth budget — the
//! multi-GPU deployment where every shard lane is a separate edge SoC.
//! All pools advance in lockstep on one wall clock; the frame completes
//! only when every shard has landed, at which point the partial frame
//! buffers are reassembled into an image bit-identical to the unsharded
//! device render, and the per-shard service times are reported as an
//! imbalance figure (critical path over mean).

use crate::pool::{DevicePool, PoolCompletion};
use crate::scheduler::FrameTicket;
use crate::session::PreparedView;
use gbu_gpu::GpuConfig;
use gbu_hw::GbuConfig;
use gbu_render::shard::{ShardPlan, ShardStrategy};
use gbu_render::FrameBuffer;

/// A frame completed by the cluster: all shards landed and merged.
#[derive(Debug)]
pub struct ShardedCompletion {
    /// The request this frame fulfilled.
    pub ticket: FrameTicket,
    /// Wall cycle at which the *last* shard landed.
    pub completed_at: u64,
    /// The merged image — bit-identical to an unsharded device render.
    pub image: FrameBuffer,
    /// Wall-cycle service time of each shard (submit → land), indexed by
    /// shard. The maximum is the frame's critical path.
    pub shard_cycles: Vec<u64>,
    /// Summed off-chip feature traffic across shards. Each shard fetched
    /// only its tile range, so this tracks (and, where Gaussians straddle
    /// shard boundaries, slightly exceeds) the unsharded frame's traffic.
    pub dram_bytes: u64,
    /// Measured imbalance: max shard service time over mean (1.0 =
    /// perfectly balanced shards).
    pub imbalance: f64,
}

#[derive(Debug)]
struct PendingFrame {
    ticket: FrameTicket,
    plan: ShardPlan,
    width: u32,
    height: u32,
    submitted_at: u64,
    /// One slot per shard, filled as pools report completions.
    parts: Vec<Option<PoolCompletion>>,
}

/// N single-frame shard lanes, each its own [`DevicePool`], advanced in
/// lockstep on one simulated wall clock.
#[derive(Debug)]
pub struct ShardedPool {
    pools: Vec<DevicePool>,
    strategy: ShardStrategy,
    pending: Vec<PendingFrame>,
}

impl ShardedPool {
    /// Creates a cluster of `shards` pools with `devices_per_pool` GBUs
    /// each. Every pool owns its own DRAM budget (`dram_share` of one
    /// host GPU's LPDDR bandwidth) — shard lanes model separate edge
    /// SoCs, not co-tenants of one bus.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0` (and transitively when
    /// `devices_per_pool == 0`).
    pub fn new(
        shards: usize,
        devices_per_pool: usize,
        strategy: ShardStrategy,
        gbu: &GbuConfig,
        gpu: &GpuConfig,
        dram_share: f64,
    ) -> Self {
        assert!(shards > 0, "a cluster needs at least one shard lane");
        Self {
            pools: (0..shards)
                .map(|_| DevicePool::new(devices_per_pool, gbu, gpu, dram_share))
                .collect(),
            strategy,
            pending: Vec::new(),
        }
    }

    /// Number of shard lanes.
    pub fn shard_count(&self) -> usize {
        self.pools.len()
    }

    /// The shard strategy frames are split with.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Current wall cycle (all lanes advance in lockstep).
    pub fn clock(&self) -> u64 {
        self.pools[0].clock()
    }

    /// Number of frames with at least one shard still in flight.
    pub fn pending_frames(&self) -> usize {
        self.pending.len()
    }

    /// `true` when every shard lane has an idle device for a new frame.
    pub fn can_accept(&self) -> bool {
        self.pools.iter().all(|p| p.idle_device().is_some())
    }

    /// Mean device utilization across all lanes so far.
    pub fn utilization(&self) -> f64 {
        self.pools.iter().map(DevicePool::utilization).sum::<f64>() / self.pools.len() as f64
    }

    /// Splits `view` into tile-row shards and fans them out, one shard
    /// per lane, all stamped with `ticket`. The frame will complete only
    /// when every shard lands.
    ///
    /// Returns the plan's predicted imbalance (max planned shard cost
    /// over mean), which the serving layer can report before the frame
    /// even runs.
    ///
    /// # Panics
    ///
    /// Panics when some lane has no idle device (check
    /// [`ShardedPool::can_accept`] first) or when a frame with the same
    /// ticket id is already pending.
    pub fn submit(&mut self, view: &PreparedView, ticket: FrameTicket) -> f64 {
        assert!(
            self.pending.iter().all(|p| p.ticket.id != ticket.id),
            "ticket {:?} already has shards in flight",
            ticket.id
        );
        let plan = ShardPlan::new(self.strategy, &view.bins, self.pools.len());
        let submitted_at = self.clock();
        for (s, pool) in self.pools.iter_mut().enumerate() {
            let device = pool.idle_device().expect("submit requires an idle device per lane");
            let shard_bins = plan.shard_bins(&view.bins, s);
            pool.submit_scoped(device, &view.splats, &shard_bins, &view.camera, ticket);
        }
        let predicted = plan.planned_imbalance();
        self.pending.push(PendingFrame {
            ticket,
            plan,
            width: view.camera.width,
            height: view.camera.height,
            submitted_at,
            parts: (0..self.pools.len()).map(|_| None).collect(),
        });
        predicted
    }

    /// Wall cycles until the next shard lands anywhere in the cluster,
    /// or `None` when everything is idle.
    pub fn next_completion_dt(&self) -> Option<u64> {
        self.pools.iter().filter_map(DevicePool::next_completion_dt).min()
    }

    /// Advances every lane by `wall_dt` cycles in lockstep, collecting
    /// the frames whose *last* shard landed during the interval. Frames
    /// with shards still in flight stay pending.
    ///
    /// # Panics
    ///
    /// Panics when `wall_dt == 0` (the shared clock must move forward).
    pub fn advance(&mut self, wall_dt: u64) -> Vec<ShardedCompletion> {
        for (s, pool) in self.pools.iter_mut().enumerate() {
            for completion in pool.advance(wall_dt) {
                let pending = self
                    .pending
                    .iter_mut()
                    .find(|p| p.ticket.id == completion.ticket.id)
                    .expect("every shard completion belongs to a pending frame");
                debug_assert!(pending.parts[s].is_none(), "one completion per shard lane");
                pending.parts[s] = Some(completion);
            }
        }

        let mut done = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].parts.iter().all(Option::is_some) {
                done.push(Self::seal(self.pending.swap_remove(i)));
            } else {
                i += 1;
            }
        }
        // swap_remove disorders the pending list; completions are sorted
        // back into landing order for deterministic event streams.
        done.sort_by_key(|c| (c.completed_at, c.ticket.id));
        done
    }

    /// Merges a fully-landed frame's shard partials into one completion.
    fn seal(pending: PendingFrame) -> ShardedCompletion {
        let PendingFrame { ticket, plan, width, height, submitted_at, parts } = pending;
        let parts: Vec<PoolCompletion> =
            parts.into_iter().map(|p| p.expect("all shards landed")).collect();
        let completed_at = parts.iter().map(|p| p.completed_at).max().expect("at least one shard");
        let shard_cycles: Vec<u64> = parts.iter().map(|p| p.completed_at - submitted_at).collect();
        let dram_bytes = parts.iter().map(|p| p.frame.run.dram_bytes).sum();
        let mean = shard_cycles.iter().sum::<u64>() as f64 / shard_cycles.len() as f64;
        let max = *shard_cycles.iter().max().expect("at least one shard");
        let imbalance = if mean > 0.0 { max as f64 / mean } else { 1.0 };

        // Reassemble the frame: every shard's device image is full-size
        // with background outside its rows; copy each shard's row bands.
        let mut image = parts[0].frame.image.clone();
        let w = width as usize;
        for (s, part) in parts.iter().enumerate() {
            if s == 0 {
                continue;
            }
            let src = &part.frame.image;
            for &ty in &plan.shards[s].rows {
                let y0 = ty * plan.tile_size;
                let y1 = ((ty + 1) * plan.tile_size).min(height);
                let lo = y0 as usize * w;
                let hi = y1 as usize * w;
                image.pixels_mut()[lo..hi].copy_from_slice(&src.pixels()[lo..hi]);
            }
        }
        ShardedCompletion { ticket, completed_at, image, shard_cycles, dram_bytes, imbalance }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Session, SessionContent, SessionSpec};
    use crate::QosTarget;
    use gbu_core::Gbu;
    use gbu_math::Vec3;

    fn prepared() -> Session {
        Session::prepare(
            SessionSpec {
                name: "cluster".into(),
                content: SessionContent::Synthetic { seed: 11, gaussians: 160 },
                qos: QosTarget::VR_72,
                frames: 2,
                phase: 0.0,
            },
            &GbuConfig::paper(),
        )
    }

    fn ticket(n: u32) -> FrameTicket {
        FrameTicket {
            id: crate::FrameId::from_index(u64::from(n)),
            session: crate::SessionId::from_index(0),
            frame: n,
            arrival: 0,
            deadline: u64::MAX,
        }
    }

    fn drain(pool: &mut ShardedPool) -> Vec<ShardedCompletion> {
        let mut done = Vec::new();
        while let Some(dt) = pool.next_completion_dt() {
            done.extend(pool.advance(dt));
        }
        done
    }

    fn unsharded_baseline(session: &Session) -> (FrameBuffer, u64) {
        let view = session.view(0);
        let mut gbu = Gbu::new(GbuConfig::paper());
        gbu.render_image(&view.splats, &view.bins, &view.camera, Vec3::ZERO).unwrap();
        let occupancy = gbu.in_flight_remaining().expect("frame in flight");
        (gbu.wait().expect("frame in flight").image, occupancy)
    }

    #[test]
    fn sharded_frame_is_bit_identical_to_single_device() {
        let session = prepared();
        let (reference, _) = unsharded_baseline(&session);
        for strategy in ShardStrategy::all() {
            for shards in [1usize, 2, 4] {
                let mut cluster = ShardedPool::new(
                    shards,
                    1,
                    strategy,
                    &GbuConfig::paper(),
                    &GpuConfig::orin_nx(),
                    0.5,
                );
                assert!(cluster.can_accept());
                cluster.submit(session.view(0), ticket(0));
                let mut done = drain(&mut cluster);
                assert_eq!(done.len(), 1, "{strategy:?}/{shards}");
                let c = done.remove(0);
                assert_eq!(
                    c.image.pixels(),
                    reference.pixels(),
                    "{strategy:?}/{shards}: merged image must be bit-identical"
                );
                assert_eq!(c.shard_cycles.len(), shards);
                assert!(c.imbalance >= 1.0 - 1e-12);
                assert!(c.dram_bytes > 0);
            }
        }
    }

    #[test]
    fn frame_completes_only_when_all_shards_land() {
        let session = prepared();
        let mut cluster = ShardedPool::new(
            4,
            1,
            ShardStrategy::ContiguousRows,
            &GbuConfig::paper(),
            &GpuConfig::orin_nx(),
            0.5,
        );
        cluster.submit(session.view(0), ticket(0));
        assert_eq!(cluster.pending_frames(), 1);
        // Advance to the first shard landing: unless every shard happens
        // to land on the same cycle, the frame must still be pending.
        let first = cluster.next_completion_dt().expect("shards in flight");
        let done = cluster.advance(first);
        if !done.is_empty() {
            // Degenerate (all shards equal): still a valid completion.
            assert_eq!(done[0].shard_cycles.len(), 4);
            return;
        }
        assert_eq!(cluster.pending_frames(), 1, "frame gates on the last shard");
        let done = drain(&mut cluster);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].completed_at, cluster.clock());
        assert_eq!(cluster.pending_frames(), 0);
    }

    #[test]
    fn sharding_shortens_the_critical_path() {
        let session = prepared();
        let (_, unsharded_cycles) = unsharded_baseline(&session);
        let mut cluster = ShardedPool::new(
            4,
            1,
            ShardStrategy::CostBalanced,
            &GbuConfig::paper(),
            &GpuConfig::orin_nx(),
            0.5,
        );
        cluster.submit(session.view(0), ticket(0));
        let done = drain(&mut cluster);
        assert!(
            done[0].completed_at < unsharded_cycles,
            "4 shard lanes must beat one device: {} vs {unsharded_cycles}",
            done[0].completed_at
        );
    }

    #[test]
    fn lanes_pipeline_independent_frames() {
        let session = prepared();
        let mut cluster = ShardedPool::new(
            2,
            2,
            ShardStrategy::InterleavedRows,
            &GbuConfig::paper(),
            &GpuConfig::orin_nx(),
            0.5,
        );
        // Two frames in flight at once: each lane has two devices.
        cluster.submit(session.view(0), ticket(0));
        assert!(cluster.can_accept(), "second device per lane is idle");
        cluster.submit(session.view(1), ticket(1));
        assert!(!cluster.can_accept());
        let done = drain(&mut cluster);
        assert_eq!(done.len(), 2);
        let mut ids: Vec<u64> = done.iter().map(|c| c.ticket.id.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
        let u = cluster.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    #[should_panic(expected = "idle device per lane")]
    fn oversubmission_panics() {
        let session = prepared();
        let mut cluster = ShardedPool::new(
            2,
            1,
            ShardStrategy::ContiguousRows,
            &GbuConfig::paper(),
            &GpuConfig::orin_nx(),
            0.5,
        );
        cluster.submit(session.view(0), ticket(0));
        cluster.submit(session.view(1), ticket(1));
    }
}
