//! Workspace-level scene store: cross-session interning of resolved
//! scenes and prepared viewpoints.
//!
//! Millions of viewers mostly look at a handful of scenes, yet classic
//! [`Session::prepare`](crate::session::Session::prepare) gives every
//! session a private `GaussianScene` copy and re-runs Steps ❶/❷ per
//! viewpoint. A [`SceneStore`] interns both behind `Arc`s, keyed by
//! content identity, so N sessions over the same content share one
//! immutable scene and one set of prepared views — including the
//! per-view device-occupancy probe used for load calibration. Resolve
//! sessions through it with
//! [`Session::prepare_shared`](crate::session::Session::prepare_shared)
//! or by setting [`crate::ServeConfig::scene_store`].
//!
//! The store is deliberately *identical-result* caching: a stored view
//! is produced by the exact same `resolve scene → orbit camera →
//! project → bin → probe` path as classic preparation, so a session
//! prepared through the store is indistinguishable from a classic one
//! except for the shared `Arc` identity (which the preprocessing-reuse
//! discount keys on).

use crate::session::{self, PreparedView, SessionContent};
use gbu_hw::GbuConfig;
use gbu_scene::{GaussianScene, ScaleProfile};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Scene content identity — two specs with equal keys render the same
/// `GaussianScene` (resolution is a view property, not a scene one:
/// `Synthetic` and `SyntheticHd` with equal seed/count share a scene).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SceneKey {
    Synthetic { seed: u64, gaussians: usize },
    Dataset { name: &'static str, profile: u8 },
}

impl SceneKey {
    fn of(content: &SessionContent) -> Self {
        match content {
            SessionContent::Synthetic { seed, gaussians }
            | SessionContent::SyntheticHd { seed, gaussians, .. } => {
                SceneKey::Synthetic { seed: *seed, gaussians: *gaussians }
            }
            SessionContent::Dataset { name, profile } => {
                let tag = match profile {
                    ScaleProfile::Test => 0,
                    ScaleProfile::Bench => 1,
                    ScaleProfile::Full => 2,
                };
                SceneKey::Dataset { name, profile: tag }
            }
        }
    }
}

/// Prepared-view identity: scene + resolution + orbit + the GBU config
/// the calibration probe ran against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ViewKey {
    scene: SceneKey,
    width: u32,
    height: u32,
    orbit_seed: u64,
    view: usize,
    gbu_fp: u64,
}

/// Hit/miss counters, exposed via [`SceneStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SceneStoreCounters {
    /// Scene resolutions served from the store.
    pub scene_hits: u64,
    /// Scene resolutions that had to build the scene.
    pub scene_misses: u64,
    /// View preparations served from the store (Steps ❶/❷ + probe
    /// skipped).
    pub view_hits: u64,
    /// View preparations that had to run Steps ❶/❷ + probe.
    pub view_misses: u64,
}

impl SceneStoreCounters {
    /// Hit rate over all lookups (scene + view), in percent.
    pub fn hit_rate_pct(&self) -> u64 {
        let hits = self.scene_hits + self.view_hits;
        let total = (hits + self.scene_misses + self.view_misses).max(1);
        hits * 100 / total
    }
}

#[derive(Default)]
struct StoreInner {
    /// Scene + the resolution `resolve_scene` reported when building it
    /// (authoritative for dataset content, whose dims come from the
    /// scenario camera).
    scenes: HashMap<SceneKey, (Arc<GaussianScene>, u32, u32)>,
    views: HashMap<ViewKey, (Arc<PreparedView>, u64)>,
    counters: SceneStoreCounters,
}

impl StoreInner {
    /// Bumps counters and mirrors them into telemetry; `hit` selects
    /// which pair of fields `bump` increments.
    fn record(&mut self, hit: bool, bump: impl FnOnce(&mut SceneStoreCounters)) {
        bump(&mut self.counters);
        let recorder = gbu_telemetry::global();
        if recorder.is_enabled() {
            recorder.counter(if hit { "scene_store.hits" } else { "scene_store.misses" }).add(1);
            recorder.gauge("scene_store.hit_rate_pct").set(self.counters.hit_rate_pct());
        }
    }
}

/// Shared, thread-safe intern table for scenes and prepared views.
/// Cloning shares the underlying store.
#[derive(Clone, Default)]
pub struct SceneStore {
    inner: Arc<Mutex<StoreInner>>,
}

impl std::fmt::Debug for SceneStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock().unwrap();
        f.debug_struct("SceneStore")
            .field("scenes", &g.scenes.len())
            .field("views", &g.views.len())
            .field("counters", &g.counters)
            .finish()
    }
}

/// FNV-1a fingerprint of a `GbuConfig` (via its `Debug` form) — probe
/// cycles are only reusable across sessions on the same device config.
fn gbu_fingerprint(gbu: &GbuConfig) -> u64 {
    format!("{gbu:?}")
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3))
}

impl SceneStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters so far.
    pub fn stats(&self) -> SceneStoreCounters {
        self.inner.lock().unwrap().counters
    }

    /// Number of distinct scenes currently interned.
    pub fn scene_count(&self) -> usize {
        self.inner.lock().unwrap().scenes.len()
    }

    /// Number of distinct prepared views currently interned.
    pub fn view_count(&self) -> usize {
        self.inner.lock().unwrap().views.len()
    }

    /// The shared scene for `content` plus the content's frame
    /// resolution, building and interning the scene on first request.
    pub fn scene(&self, content: &SessionContent) -> (Arc<GaussianScene>, u32, u32) {
        let key = SceneKey::of(content);
        let cached = self.inner.lock().unwrap().scenes.get(&key).cloned();
        let (scene, built_w, built_h) = match cached {
            Some(entry) => {
                self.inner.lock().unwrap().record(true, |c| c.scene_hits += 1);
                entry
            }
            None => {
                // Build outside the lock; a concurrent duplicate build
                // just loses the `or_insert` race.
                let (built, w, h) = session::resolve_scene(content);
                let built = Arc::new(built);
                let mut g = self.inner.lock().unwrap();
                g.record(false, |c| c.scene_misses += 1);
                g.scenes.entry(key).or_insert((built, w, h)).clone()
            }
        };
        let (width, height) = match content {
            SessionContent::Synthetic { .. } => (64, 64),
            SessionContent::SyntheticHd { width, height, .. } => (*width, *height),
            SessionContent::Dataset { .. } => (built_w, built_h),
        };
        (scene, width, height)
    }

    /// Shared handle + calibration cycles for one orbit viewpoint,
    /// preparing (Steps ❶/❷ + probe) and interning it on first request.
    pub(crate) fn view(
        &self,
        content: &SessionContent,
        orbit_seed: u64,
        v: usize,
        gbu: &GbuConfig,
    ) -> (Arc<PreparedView>, u64) {
        let (scene, width, height) = self.scene(content);
        let key = ViewKey {
            scene: SceneKey::of(content),
            width,
            height,
            orbit_seed,
            view: v,
            gbu_fp: gbu_fingerprint(gbu),
        };
        let cached = self.inner.lock().unwrap().views.get(&key).cloned();
        if let Some(hit) = cached {
            self.inner.lock().unwrap().record(true, |c| c.view_hits += 1);
            return hit;
        }
        let camera = session::orbit_camera(&scene, width, height, orbit_seed, v);
        let view = Arc::new(session::prepare_view(&scene, camera));
        let cycles = session::probe_view_cycles(&view, gbu);
        let mut g = self.inner.lock().unwrap();
        g.record(false, |c| c.view_misses += 1);
        g.views.entry(key).or_insert((view, cycles)).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(seed: u64) -> SessionContent {
        SessionContent::Synthetic { seed, gaussians: 50 }
    }

    #[test]
    fn scenes_are_interned_by_content() {
        let store = SceneStore::new();
        let (a, _, _) = store.scene(&synthetic(7));
        let (b, _, _) = store.scene(&synthetic(7));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.scene_count(), 1);
        let (c, _, _) = store.scene(&synthetic(8));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(store.scene_count(), 2);
        let s = store.stats();
        assert_eq!((s.scene_hits, s.scene_misses), (1, 2));
    }

    #[test]
    fn hd_variant_shares_the_scene_but_not_the_view() {
        let store = SceneStore::new();
        let gbu = GbuConfig::paper();
        let (a, w, h) = store.scene(&synthetic(7));
        let hd = SessionContent::SyntheticHd { seed: 7, gaussians: 50, width: 128, height: 96 };
        let (b, hw, hh) = store.scene(&hd);
        // Resolution is a view property: one scene, two framings.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((w, h), (64, 64));
        assert_eq!((hw, hh), (128, 96));
        let (v_sd, _) = store.view(&synthetic(7), 7, 0, &gbu);
        let (v_hd, _) = store.view(&hd, 7, 0, &gbu);
        assert!(!Arc::ptr_eq(&v_sd, &v_hd));
        assert_eq!(v_sd.camera.width, 64);
        assert_eq!(v_hd.camera.width, 128);
    }

    #[test]
    fn views_are_interned_with_probe_cycles() {
        let store = SceneStore::new();
        let gbu = GbuConfig::paper();
        let (a, ca) = store.view(&synthetic(7), 7, 0, &gbu);
        let (b, cb) = store.view(&synthetic(7), 7, 0, &gbu);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ca, cb);
        assert!(ca > 0);
        let s = store.stats();
        assert_eq!((s.view_hits, s.view_misses), (1, 1));
        assert_eq!(store.view_count(), 1);
        // A different orbit viewpoint is a distinct entry.
        let (c, _) = store.view(&synthetic(7), 7, 1, &gbu);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(store.view_count(), 2);
    }

    #[test]
    fn hit_rate_tracks_lookups() {
        let store = SceneStore::new();
        assert_eq!(store.stats().hit_rate_pct(), 0);
        let _ = store.scene(&synthetic(1)); // miss
        let _ = store.scene(&synthetic(1)); // hit
        let _ = store.scene(&synthetic(1)); // hit
        let _ = store.scene(&synthetic(2)); // miss
        assert_eq!(store.stats().hit_rate_pct(), 50);
    }

    #[test]
    fn clones_share_the_store() {
        let store = SceneStore::new();
        let alias = store.clone();
        let (a, _, _) = store.scene(&synthetic(3));
        let (b, _, _) = alias.scene(&synthetic(3));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(alias.stats().scene_hits, 1);
    }
}
