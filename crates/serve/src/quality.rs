//! The quality governor: a serving policy layer that sheds *quality*
//! before it sheds *frames*.
//!
//! Under overload, a [`crate::ServeEngine`] without this module has two
//! levers: refuse the frame at admission (reject) or cancel it once its
//! deadline is provably gone (drop). Both ship nothing. The
//! contribution-aware render modes ([`gbu_render::contrib`]) add a third
//! lever: ship a *cheaper* frame — the same viewpoint blended from only
//! its highest-contribution splats, priced at genuinely fewer modeled
//! device cycles.
//!
//! This module holds the *policy* (a degradation ladder plus hysteresis
//! thresholds); the mechanism lives in the engine, which caches a
//! degraded [`crate::PreparedView`] per (view, rung) and substitutes it
//! at dispatch. Two independent mechanisms hang off one config:
//!
//! - **Counter-offer admission** ([`QualityGovernor::counter_offer`]):
//!   when deadline-aware admission proves a frame unmeetable at exact
//!   quality, re-test it at the *deepest* ladder rung and admit it
//!   degraded ([`crate::ServeEvent::Degraded`]) instead of rejecting.
//! - **Pressure shedding** ([`QualityGovernor::shed_on_pressure`]): on a
//!   fixed cycle grid, step the global quality level one rung deeper when
//!   [`crate::ServeMetrics::window_pressure`] reaches
//!   [`QualityGovernor::shed_pressure`], and one rung back toward
//!   [`gbu_render::QualityLevel::Exact`] when it falls to
//!   [`QualityGovernor::recover_pressure`] — the same
//!   hysteresis-threshold-plus-cooldown shape as the fleet autoscaler,
//!   so the governor cannot thrash between rungs on alternating ticks.
//!
//! Like [`crate::FleetConfig`], the default is entirely inactive and an
//! inactive governor leaves the engine byte-identical to a build without
//! this module.

use gbu_render::QualityLevel;

/// The serving quality-governor configuration carried by
/// [`crate::ServeConfig`]. Inactive by default: an empty ladder (or both
/// mechanisms off) costs nothing on the engine's event loop.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityGovernor {
    /// Degradation ladder, mildest first. Rung `i` (1-based in events
    /// and telemetry) is what the engine serves at global level `i`;
    /// counter-offers use the deepest rung. Every entry must be a
    /// non-`Exact` level (`Exact` is "level 0", the absence of
    /// degradation). Empty = governor off.
    pub ladder: Vec<QualityLevel>,
    /// Let admission counter-offer the deepest rung instead of rejecting
    /// an [`crate::RejectReason::Unmeetable`] frame.
    pub counter_offer: bool,
    /// Run the pressure tick: shed quality under deadline pressure,
    /// recover toward exact when load falls.
    pub shed_on_pressure: bool,
    /// Cycles between shed/recover decisions.
    pub interval: u64,
    /// Shed one rung when window pressure is at or above this fraction.
    pub shed_pressure: f64,
    /// Recover one rung only when window pressure is at or below this
    /// fraction — keep it well under `shed_pressure` for hysteresis.
    pub recover_pressure: f64,
    /// Decision ticks to sit out after any shed/recover step.
    pub cooldown_ticks: u32,
}

impl Default for QualityGovernor {
    fn default() -> Self {
        Self {
            ladder: Vec::new(),
            counter_offer: false,
            shed_on_pressure: false,
            interval: 2_000_000,
            shed_pressure: 0.10,
            recover_pressure: 0.01,
            cooldown_ticks: 2,
        }
    }
}

impl QualityGovernor {
    /// The standard three-rung ladder: keep the top 75%, 50%, then 25%
    /// of splats by contribution score.
    pub fn default_ladder() -> Vec<QualityLevel> {
        vec![
            QualityLevel::TopK { fraction: 0.75 },
            QualityLevel::TopK { fraction: 0.50 },
            QualityLevel::TopK { fraction: 0.25 },
        ]
    }

    /// `true` when the governor can ever change a served frame. An
    /// inactive config leaves the engine byte-identical to one without a
    /// quality subsystem.
    pub fn is_active(&self) -> bool {
        !self.ladder.is_empty() && (self.counter_offer || self.shed_on_pressure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inactive() {
        let cfg = QualityGovernor::default();
        assert!(!cfg.is_active());
        // A ladder alone does nothing until a mechanism is switched on …
        let laddered = QualityGovernor { ladder: QualityGovernor::default_ladder(), ..cfg.clone() };
        assert!(!laddered.is_active());
        // … and a mechanism alone does nothing without rungs to serve.
        assert!(!QualityGovernor { counter_offer: true, ..cfg.clone() }.is_active());
        assert!(!QualityGovernor { shed_on_pressure: true, ..cfg }.is_active());
        assert!(QualityGovernor { counter_offer: true, ..laddered.clone() }.is_active());
        assert!(QualityGovernor { shed_on_pressure: true, ..laddered }.is_active());
    }

    #[test]
    fn default_thresholds_have_hysteresis_headroom() {
        let g = QualityGovernor::default();
        assert!(g.recover_pressure < g.shed_pressure, "thresholds must not overlap");
        assert!(g.cooldown_ticks > 0);
        assert!(g.interval > 0);
    }

    #[test]
    fn default_ladder_degrades_monotonically() {
        let ladder = QualityGovernor::default_ladder();
        assert!(!ladder.is_empty());
        let mut last = 1.0f32;
        for level in ladder {
            assert!(!level.is_exact(), "ladder rungs are degraded levels");
            level.validate();
            let QualityLevel::TopK { fraction } = level else {
                panic!("default ladder is TopK-based")
            };
            assert!(fraction < last, "deeper rungs keep strictly fewer splats");
            last = fraction;
        }
    }
}
