//! The fleet control plane: fault-injection schedules, session
//! migration policy and miss-rate autoscaling over a
//! [`crate::ClusterBackend`]'s lanes.
//!
//! A production cluster is not a fixed set of healthy lanes. Lanes die
//! (fault injection via [`FleetPlan`]), capacity should follow demand
//! (grow/shrink via [`AutoscaleConfig`]), and sessions should follow
//! capacity (home-lane migration via [`MigrationConfig`]). This module
//! holds the *policy* types; the mechanism lives in the engine
//! ([`crate::ServeEngine`] applies the plan between its event steps) and
//! the backend ([`crate::ExecBackend::kill_lane`] /
//! [`crate::ExecBackend::restore_lane`] drain and revive lanes).
//!
//! Everything here is plain data with a deterministic interpretation:
//! plan events fire at absolute engine cycles and autoscale decisions
//! happen on a fixed cycle grid, so a step-sliced run sees exactly the
//! churn a one-shot drain sees (pinned by `tests/api_equivalence.rs`).

/// One scheduled lane intervention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetAction {
    /// Kill the lane: drain its in-flight frames back to the ready queue
    /// ([`crate::ServeEvent::Requeued`]) and refuse it new work.
    Kill(usize),
    /// Restore the lane, starting a new generation.
    Restore(usize),
}

impl FleetAction {
    /// The lane the action targets.
    pub fn lane(self) -> usize {
        match self {
            FleetAction::Kill(lane) | FleetAction::Restore(lane) => lane,
        }
    }
}

/// A lane intervention pinned to an absolute engine cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetEvent {
    /// Engine cycle at (or after) which the action applies.
    pub at: u64,
    /// What happens to which lane.
    pub action: FleetAction,
}

/// A fault-injection schedule: lane kills and restores pinned to
/// absolute cycles, applied in time order as the engine's clock passes
/// them. The schedule is data, not callbacks, so cloning a
/// [`crate::ServeConfig`] replays the identical churn.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetPlan {
    events: Vec<FleetEvent>,
}

impl FleetPlan {
    /// Builds a plan from `events`, sorted by cycle (ties keep their
    /// given order, so "kill then restore at t" means exactly that).
    pub fn new(mut events: Vec<FleetEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        Self { events }
    }

    /// The schedule in time order.
    pub fn events(&self) -> &[FleetEvent] {
        &self.events
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Miss-rate autoscaling policy: on a fixed cycle grid, compare the
/// metrics window's pressure ([`crate::ServeMetrics::window_pressure`])
/// against two thresholds and park or restore lanes. Hysteresis comes
/// from the threshold gap plus a cooldown after every action, so the
/// scaler cannot thrash a lane up and down on alternating ticks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Cycles between scaling decisions.
    pub interval: u64,
    /// Grow (restore a parked lane) when window pressure is at or above
    /// this fraction.
    pub grow_pressure: f64,
    /// Shrink (park a lane) only when window pressure is at or below
    /// this fraction — keep it well under `grow_pressure`.
    pub shrink_pressure: f64,
    /// Shrink only when mean work per live lane (queued + in-flight
    /// frames over live lanes) is below this, so a busy-but-meeting-
    /// deadlines fleet is not drained.
    pub shrink_occupancy: f64,
    /// Never park below this many live lanes.
    pub min_lanes: usize,
    /// Decision ticks to sit out after any scale action.
    pub cooldown_ticks: u32,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            interval: 2_000_000,
            grow_pressure: 0.10,
            shrink_pressure: 0.01,
            shrink_occupancy: 0.5,
            min_lanes: 1,
            cooldown_ticks: 2,
        }
    }
}

/// Session-migration policy. Migration assigns every unsharded session
/// a *home lane* (mirrored into the backend as a placement affinity),
/// moves sessions off dying lanes the moment they go down, and —
/// optionally — rebalances one session per autoscale tick from the most
/// crowded home to the least.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationConfig {
    /// Also rebalance between healthy lanes on every autoscale tick
    /// (off: migrate only off dead lanes).
    pub rebalance: bool,
}

/// The full fleet-control configuration carried by
/// [`crate::ServeConfig`]. The default is entirely inactive — no plan,
/// no autoscaler, no migration, no reservation — and an inactive fleet
/// config leaves the engine's behaviour byte-identical to a build
/// without this module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetConfig {
    /// Scheduled lane kills/restores (fault injection).
    pub plan: FleetPlan,
    /// Miss-rate autoscaler, when `Some`.
    pub autoscale: Option<AutoscaleConfig>,
    /// Session home-lane migration, when `Some`.
    pub migration: Option<MigrationConfig>,
    /// Reserve open lanes for the widest queued sharded frame, so
    /// unsharded backfill stops starving wide frames of lanes under
    /// overload.
    pub lane_reservation: bool,
}

impl FleetConfig {
    /// `true` when any fleet mechanism is switched on. An inactive
    /// config costs nothing on the engine's event loop.
    pub fn is_active(&self) -> bool {
        !self.plan.is_empty()
            || self.autoscale.is_some()
            || self.migration.is_some()
            || self.lane_reservation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_cycle_and_keeps_tie_order() {
        let plan = FleetPlan::new(vec![
            FleetEvent { at: 500, action: FleetAction::Restore(1) },
            FleetEvent { at: 100, action: FleetAction::Kill(1) },
            FleetEvent { at: 500, action: FleetAction::Kill(0) },
        ]);
        let at: Vec<u64> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(at, vec![100, 500, 500]);
        assert_eq!(plan.events()[1].action, FleetAction::Restore(1), "stable sort keeps tie order");
        assert_eq!(plan.events()[2].action.lane(), 0);
        assert!(!plan.is_empty());
        assert!(FleetPlan::default().is_empty());
    }

    #[test]
    fn default_config_is_inactive() {
        let cfg = FleetConfig::default();
        assert!(!cfg.is_active());
        assert!(FleetConfig { lane_reservation: true, ..FleetConfig::default() }.is_active());
        assert!(FleetConfig {
            autoscale: Some(AutoscaleConfig::default()),
            ..FleetConfig::default()
        }
        .is_active());
        assert!(FleetConfig {
            migration: Some(MigrationConfig::default()),
            ..FleetConfig::default()
        }
        .is_active());
        assert!(FleetConfig {
            plan: FleetPlan::new(vec![FleetEvent { at: 0, action: FleetAction::Kill(0) }]),
            ..FleetConfig::default()
        }
        .is_active());
    }

    #[test]
    fn autoscale_default_has_hysteresis_headroom() {
        let a = AutoscaleConfig::default();
        assert!(a.shrink_pressure < a.grow_pressure, "thresholds must not overlap");
        assert!(a.cooldown_ticks > 0);
        assert!(a.min_lanes >= 1);
    }
}
