//! Frame schedulers and admission control.
//!
//! The serving engine keeps one shared ready queue of admitted frames;
//! whenever a device in the pool goes idle, the [`Scheduler`] picks which
//! queued frame it renders next. Three policies are provided:
//!
//! - [`Fcfs`] — first-come-first-served, the baseline a naive host driver
//!   implements;
//! - [`RoundRobin`] — cycles over sessions for throughput fairness,
//!   ignoring urgency;
//! - [`Edf`] — earliest-deadline-first, the classic real-time policy that
//!   FLICKER-style deadline-aware splat serving motivates.
//!
//! [`AdmissionControl`] decides at arrival time whether a frame may enter
//! the ready queue at all: a bounded queue depth gives backpressure to
//! the client, and the optional
//! [`reject_unmeetable`](AdmissionControl::reject_unmeetable) check
//! refuses frames whose deadline is provably unmeetable even on an
//! uncontended device — rejecting at admission is cheaper than queueing a
//! frame that can only miss.

use crate::event::{FrameId, RejectReason, SessionId};

/// Identity and timing of one admitted frame request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTicket {
    /// Engine-wide frame id (the client's future).
    pub id: FrameId,
    /// The session that requested the frame.
    pub session: SessionId,
    /// Frame number within the session (indexes the session's viewpoint
    /// stream round-robin).
    pub frame: u32,
    /// Cycle at which the client requested the frame.
    pub arrival: u64,
    /// Cycle by which the frame must complete.
    pub deadline: u64,
}

/// Picks the next queued frame for an idle device.
///
/// `queue` is ordered by admission (index 0 is the oldest) and contains
/// only frames that have already arrived. Returns the index of the frame
/// to dispatch, or `None` to leave the device idle (no policy here does,
/// but a gating policy may).
pub trait Scheduler: std::fmt::Debug {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Chooses a queue index to dispatch at simulated time `now`.
    fn pick(&mut self, queue: &[FrameTicket], now: u64) -> Option<usize>;
}

/// First-come-first-served: always the oldest admitted frame.
#[derive(Debug, Default, Clone)]
pub struct Fcfs;

impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn pick(&mut self, queue: &[FrameTicket], _now: u64) -> Option<usize> {
        if queue.is_empty() {
            None
        } else {
            Some(0)
        }
    }
}

/// Round-robin over sessions: serves the next session (in cyclic session
/// order after the last one served) that has a frame queued, oldest frame
/// first within the session.
#[derive(Debug, Default, Clone)]
pub struct RoundRobin {
    last_session: Option<SessionId>,
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn pick(&mut self, queue: &[FrameTicket], _now: u64) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        // Sessions present in the queue, with each session's oldest frame.
        let start = self.last_session.map_or(0, |s| s.0 + 1);
        let key = |t: &FrameTicket| {
            // Cyclic distance from the session after the last served one.
            t.session.0.wrapping_sub(start) as u64
        };
        let (idx, ticket) = queue
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (key(t), t.arrival, *i))
            .expect("queue is non-empty");
        self.last_session = Some(ticket.session);
        Some(idx)
    }
}

/// Earliest-deadline-first: the queued frame whose deadline expires
/// soonest, breaking ties by arrival order.
#[derive(Debug, Default, Clone)]
pub struct Edf;

impl Scheduler for Edf {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn pick(&mut self, queue: &[FrameTicket], _now: u64) -> Option<usize> {
        queue.iter().enumerate().min_by_key(|(i, t)| (t.deadline, t.arrival, *i)).map(|(i, _)| i)
    }
}

/// The scheduling policies the engine can be configured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// [`Fcfs`].
    Fcfs,
    /// [`RoundRobin`].
    RoundRobin,
    /// [`Edf`].
    Edf,
}

impl Policy {
    /// All built-in policies.
    pub fn all() -> [Policy; 3] {
        [Policy::Fcfs, Policy::RoundRobin, Policy::Edf]
    }

    /// Instantiates the scheduler.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            Policy::Fcfs => Box::new(Fcfs),
            Policy::RoundRobin => Box::new(RoundRobin::default()),
            Policy::Edf => Box::new(Edf),
        }
    }

    /// Stable name used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs",
            Policy::RoundRobin => "round_robin",
            Policy::Edf => "edf",
        }
    }
}

/// Admission control: the gate every arrival passes before entering the
/// ready queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionControl {
    /// Maximum number of frames the ready queue may hold; arrivals beyond
    /// this are rejected (backpressure).
    pub max_queue_depth: usize,
    /// When set, reject at admission any frame whose deadline is already
    /// unmeetable: `arrival + queued_wait + min_service_estimate >
    /// deadline`, where the estimate is the session's cheapest viewpoint
    /// on an uncontended device and `queued_wait` is the estimated wait
    /// behind the work already queued (see
    /// [`AdmissionControl::queue_aware`]). Such a frame could only burn
    /// device time to miss anyway.
    pub reject_unmeetable: bool,
    /// Whether the meetability estimate folds in the wait behind frames
    /// already queued ahead of the candidate (their summed optimistic
    /// service time spread over the pool's devices). Off, the check
    /// pretends the candidate runs next — optimistic at exactly the
    /// moment (a deep queue) when optimism hurts most. On by default;
    /// only meaningful together with
    /// [`AdmissionControl::reject_unmeetable`].
    pub queue_aware: bool,
    /// Whether the meetability estimate also folds in the work *already
    /// executing* on the pool's devices (`Gbu::in_flight_remaining`,
    /// summed and spread over the devices). The queue-aware term alone
    /// sees an empty queue the instant after a dispatch, even though
    /// every device may be mid-frame — exactly when a moderate overload
    /// admits frames that can only miss. On by default; only meaningful
    /// together with [`AdmissionControl::reject_unmeetable`].
    pub in_flight_aware: bool,
}

impl Default for AdmissionControl {
    fn default() -> Self {
        Self {
            max_queue_depth: 64,
            reject_unmeetable: false,
            queue_aware: true,
            in_flight_aware: true,
        }
    }
}

impl AdmissionControl {
    /// Whether a new arrival may enter a queue currently `depth` deep.
    pub fn admits(&self, depth: usize) -> bool {
        depth < self.max_queue_depth
    }

    /// Full admission decision for a frame arriving at `arrival` with
    /// `deadline`, given the current queue `depth`, the frames its
    /// session already holds queued (`session_depth`, gated by
    /// `session_quota` — [`crate::ServeConfig::session_queue_quota`]),
    /// the estimated wait `queued_wait_cycles` behind work already
    /// queued *and* already executing (the engine folds in only the
    /// terms enabled by [`AdmissionControl::queue_aware`] /
    /// [`AdmissionControl::in_flight_aware`]; with both off the wait is
    /// ignored entirely) and the session's optimistic
    /// `min_service_cycles` estimate (mode-aware: the critical-path
    /// shard bound for sharded sessions). `Ok(())` admits; `Err`
    /// carries the rejection reason.
    #[allow(clippy::too_many_arguments)] // an admission decision simply has this many inputs
    pub fn decide(
        &self,
        depth: usize,
        session_depth: usize,
        session_quota: Option<usize>,
        queued_wait_cycles: u64,
        arrival: u64,
        deadline: u64,
        min_service_cycles: u64,
    ) -> Result<(), RejectReason> {
        if !self.admits(depth) {
            return Err(RejectReason::QueueFull);
        }
        if session_quota.is_some_and(|quota| session_depth >= quota) {
            return Err(RejectReason::QuotaExceeded);
        }
        let wait = if self.queue_aware || self.in_flight_aware { queued_wait_cycles } else { 0 };
        if self.reject_unmeetable
            && arrival.saturating_add(wait).saturating_add(min_service_cycles) > deadline
        {
            return Err(RejectReason::Unmeetable);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticket(session: u32, frame: u32, arrival: u64, deadline: u64) -> FrameTicket {
        FrameTicket {
            id: FrameId::from_index(u64::from(session) * 1000 + u64::from(frame)),
            session: SessionId::from_index(session as usize),
            frame,
            arrival,
            deadline,
        }
    }

    #[test]
    fn fcfs_picks_head() {
        let q = vec![ticket(2, 0, 5, 100), ticket(0, 0, 7, 50)];
        assert_eq!(Fcfs.pick(&q, 10), Some(0));
        assert_eq!(Fcfs.pick(&[], 10), None);
    }

    #[test]
    fn edf_picks_earliest_deadline() {
        let q = vec![ticket(0, 0, 1, 300), ticket(1, 0, 2, 120), ticket(2, 0, 3, 200)];
        assert_eq!(Edf.pick(&q, 10), Some(1));
    }

    #[test]
    fn edf_breaks_deadline_ties_by_arrival() {
        let q = vec![ticket(0, 0, 9, 100), ticket(1, 0, 2, 100)];
        assert_eq!(Edf.pick(&q, 10), Some(1));
    }

    #[test]
    fn round_robin_cycles_sessions() {
        let mut rr = RoundRobin::default();
        let q = vec![ticket(0, 0, 1, 100), ticket(1, 0, 2, 100), ticket(2, 0, 3, 100)];
        let first = rr.pick(&q, 10).unwrap();
        assert_eq!(first, 0);
        // Session 0 was served; next pick prefers session 1.
        let q2 = vec![ticket(0, 1, 4, 200), ticket(1, 0, 2, 100), ticket(2, 0, 3, 100)];
        assert_eq!(rr.pick(&q2, 10), Some(1));
        // ... then session 2 even though session 0 has an older frame.
        let q3 = vec![ticket(0, 1, 4, 200), ticket(2, 0, 3, 100)];
        assert_eq!(rr.pick(&q3, 10), Some(1));
    }

    #[test]
    fn round_robin_wraps_around() {
        let mut rr = RoundRobin { last_session: Some(SessionId::from_index(2)) };
        let q = vec![ticket(2, 1, 4, 200), ticket(0, 0, 9, 100)];
        assert_eq!(rr.pick(&q, 10), Some(1), "wraps to session 0 after 2");
    }

    #[test]
    fn admission_bounds_queue() {
        let ac = AdmissionControl { max_queue_depth: 2, ..AdmissionControl::default() };
        assert!(ac.admits(0));
        assert!(ac.admits(1));
        assert!(!ac.admits(2));
        assert_eq!(ac.decide(2, 0, None, 0, 0, 100, 10), Err(RejectReason::QueueFull));
        assert_eq!(ac.decide(1, 0, None, 0, 0, 100, 10), Ok(()));
    }

    #[test]
    fn unmeetable_rejection_is_opt_in() {
        let lax = AdmissionControl::default();
        // Deadline 100 with a 500-cycle minimum service: hopeless, but
        // admitted unless the deadline-aware check is enabled.
        assert_eq!(lax.decide(0, 0, None, 0, 50, 100, 500), Ok(()));
        let strict = AdmissionControl { reject_unmeetable: true, ..lax };
        assert_eq!(strict.decide(0, 0, None, 0, 50, 100, 500), Err(RejectReason::Unmeetable));
        // A meetable frame still passes.
        assert_eq!(strict.decide(0, 0, None, 0, 50, 600, 500), Ok(()));
        // Saturating arithmetic: a huge arrival cannot wrap around and
        // sneak past an effectively-infinite deadline.
        assert_eq!(strict.decide(0, 0, None, 0, u64::MAX - 1, u64::MAX, 500), Ok(()));
        assert_eq!(
            strict.decide(0, 0, None, 0, u64::MAX - 1, u64::MAX - 1, 500),
            Err(RejectReason::Unmeetable)
        );
    }

    #[test]
    fn queue_wait_folds_into_meetability() {
        let strict = AdmissionControl { reject_unmeetable: true, ..AdmissionControl::default() };
        // Meetable with an empty queue (arrival 0, service 400 ≤ 1000)…
        assert_eq!(strict.decide(0, 0, None, 0, 0, 1000, 400), Ok(()));
        // …but not behind 700 cycles of queued work.
        assert_eq!(strict.decide(3, 0, None, 700, 0, 1000, 400), Err(RejectReason::Unmeetable));
        // A fully wait-blind configuration ignores the estimate (the
        // pre-queue-aware behaviour, kept reachable for comparison).
        let blind = AdmissionControl { queue_aware: false, in_flight_aware: false, ..strict };
        assert_eq!(blind.decide(3, 0, None, 700, 0, 1000, 400), Ok(()));
        // Either awareness flag alone re-enables the wait term.
        let inflight_only = AdmissionControl { queue_aware: false, ..strict };
        assert_eq!(
            inflight_only.decide(3, 0, None, 700, 0, 1000, 400),
            Err(RejectReason::Unmeetable)
        );
        // Queue wait saturates rather than wrapping.
        assert_eq!(
            strict.decide(1, 0, None, u64::MAX, 5, u64::MAX - 1, 1),
            Err(RejectReason::Unmeetable)
        );
    }
}
