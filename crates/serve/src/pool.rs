//! A pool of GBU devices advanced on one simulated clock with
//! shared-DRAM bandwidth contention.
//!
//! Each device is a [`gbu_core::Gbu`] driven through the paper's
//! asynchronous `GBU_render_image` / `GBU_check_status` programming model.
//! The pool owns the *wall* clock; every busy device makes progress at a
//! rate `≤ 1` device-cycle per wall-cycle. When the sum of the active
//! frames' feature-fetch bandwidths exceeds the GBUs' share of LPDDR
//! bandwidth (the paper's Limitation 2 — the GBU shares DRAM with the
//! GPU), every active device is slowed by the same factor, exactly like
//! fair-share memory throttling. Rates only change at submit/completion
//! boundaries, so advancing event-to-event is exact, not a discretisation.

use crate::scheduler::FrameTicket;
use crate::session::PreparedView;
use gbu_core::device::CompletedFrame;
use gbu_core::Gbu;
use gbu_gpu::GpuConfig;
use gbu_hw::GbuConfig;
use gbu_math::Vec3;
use gbu_render::binning::TileBins;
use gbu_render::Splat2D;
use gbu_scene::Camera;

/// A frame completed by the pool, tagged with its ticket and wall-clock
/// completion time.
#[derive(Debug)]
pub struct PoolCompletion {
    /// The admitted request this frame fulfilled.
    pub ticket: FrameTicket,
    /// Index of the device that rendered it.
    pub device: usize,
    /// Wall cycle at which it completed.
    pub completed_at: u64,
    /// The rendered frame and its hardware counters.
    pub frame: CompletedFrame,
}

#[derive(Debug)]
struct ActiveFrame {
    ticket: FrameTicket,
    /// Feature-fetch bandwidth demand in bytes per *device* cycle.
    demand: f64,
    /// Fractional device-cycle accumulator (contention rates are not
    /// integer, the device clock is).
    residue: f64,
    /// Wall cycle the frame was submitted at (start of the busy segment
    /// telemetry records on completion).
    started: u64,
    /// Host-preprocessing device-cycles still to burn before the GBU
    /// makes progress — the Step-❶/❷ charge of
    /// [`DevicePool::submit_with_prep`]. The slot is occupied (and busy,
    /// and subject to DRAM contention) while the host GPU produces the
    /// frame's artifacts; 0 on the classic submit path.
    prep: u64,
}

/// N GBU devices on one simulated clock with a shared DRAM budget.
#[derive(Debug)]
pub struct DevicePool {
    devices: Vec<Gbu>,
    active: Vec<Option<ActiveFrame>>,
    clock: u64,
    /// DRAM bytes per wall cycle available to the pool (the GBUs' share
    /// of the edge SoC's LPDDR bandwidth).
    bytes_per_cycle: f64,
    busy_device_cycles: u64,
    /// Device-cycles lost to DRAM fair-share arbitration so far: busy
    /// wall time each device spent *not* progressing because the
    /// contention rate was below 1.
    dram_stall_cycles: f64,
    recorder: gbu_telemetry::Recorder,
    /// Cluster lane this pool serves as, for span labels (`None` when
    /// the pool is a standalone backend).
    lane: Option<u32>,
    /// Restart generation of this pool's lane: 0 for the first lifetime,
    /// bumped by the cluster on every fleet restore so `device_busy`
    /// spans distinguish pre- and post-restart work.
    lane_generation: u32,
    /// Registry handle acquired once at attach (gauge updates on the
    /// advance path are then an atomic store).
    stall_gauge: gbu_telemetry::Gauge,
}

impl DevicePool {
    /// Creates a pool of `devices` GBUs. The pool's DRAM budget is
    /// `dram_share` of the host GPU's LPDDR bandwidth (the co-simulation
    /// charges the GPU's preprocessing streams the rest; `gbu_core::system`
    /// uses 0.5 for one device).
    pub fn new(devices: usize, gbu: &GbuConfig, gpu: &GpuConfig, dram_share: f64) -> Self {
        assert!(devices > 0, "a pool needs at least one device");
        assert!(dram_share > 0.0 && dram_share <= 1.0, "dram_share in (0, 1]");
        let bytes_per_cycle = gpu.dram_bytes_per_s() * dram_share / (gbu.clock_ghz * 1e9);
        Self {
            devices: (0..devices).map(|_| Gbu::new(gbu.clone())).collect(),
            active: (0..devices).map(|_| None).collect(),
            clock: 0,
            bytes_per_cycle,
            busy_device_cycles: 0,
            dram_stall_cycles: 0.0,
            recorder: gbu_telemetry::Recorder::disabled(),
            lane: None,
            lane_generation: 0,
            stall_gauge: gbu_telemetry::Gauge::default(),
        }
    }

    /// Sets the lane restart generation stamped onto future
    /// `device_busy` spans (cluster lanes only; standalone pools stay
    /// at generation 0 and omit the label).
    pub fn set_lane_generation(&mut self, generation: u32) {
        self.lane_generation = generation;
    }

    /// Attaches a telemetry recorder: every frame completion records a
    /// `device_busy` span `[submit, completion]`, and DRAM-arbitration
    /// stalls accumulate into a `serve.dram_stall_cycles` gauge (lane-
    /// suffixed when this pool is one cluster lane, so lanes don't
    /// clobber each other).
    pub fn attach_recorder(&mut self, recorder: gbu_telemetry::Recorder, lane: Option<u32>) {
        self.stall_gauge = match lane {
            Some(l) => recorder.gauge(&format!("serve.lane{l}.dram_stall_cycles")),
            None => recorder.gauge("serve.dram_stall_cycles"),
        };
        self.recorder = recorder;
        self.lane = lane;
    }

    /// Device-cycles lost to DRAM fair-share arbitration so far
    /// (busy wall time at a contention rate below 1).
    pub fn dram_stall_cycles(&self) -> f64 {
        self.dram_stall_cycles
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` when the pool has no devices (never; pools are non-empty).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Current wall cycle.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Index of an idle device, if any.
    pub fn idle_device(&self) -> Option<usize> {
        self.active.iter().position(Option::is_none)
    }

    /// Number of devices currently rendering.
    pub fn busy_count(&self) -> usize {
        self.active.iter().filter(|a| a.is_some()).count()
    }

    /// Mean device utilization so far: busy device-cycles over available
    /// device-cycles.
    pub fn utilization(&self) -> f64 {
        if self.clock == 0 {
            return 0.0;
        }
        self.busy_device_cycles as f64 / (self.clock as f64 * self.devices.len() as f64)
    }

    /// Submits `view` to device `device` (must be idle) on behalf of
    /// `ticket`.
    ///
    /// # Panics
    ///
    /// Panics if the device still has a frame in flight — the engine only
    /// dispatches to [`DevicePool::idle_device`] slots.
    pub fn submit(&mut self, device: usize, view: &PreparedView, ticket: FrameTicket) {
        self.submit_with_prep(device, view, ticket, 0);
    }

    /// [`DevicePool::submit`] plus an up-front host-preprocessing charge:
    /// the frame occupies `device` for `prep_cycles` additional
    /// device-cycles (the host GPU's Step-❶/❷ time, converted to device
    /// cycles by the engine) before GBU progress starts.
    ///
    /// # Panics
    ///
    /// Panics if the device still has a frame in flight.
    pub fn submit_with_prep(
        &mut self,
        device: usize,
        view: &PreparedView,
        ticket: FrameTicket,
        prep_cycles: u64,
    ) {
        self.devices[device]
            .render_image(&view.splats, &view.bins, &view.camera, Vec3::ZERO)
            .expect("engine dispatches only to idle devices");
        self.track(device, ticket, prep_cycles);
    }

    /// Submits one *shard* of a frame to device `device` (must be idle):
    /// `bins` is a tile-range restriction of the frame's bins, executed
    /// through the device's scoped entry point
    /// ([`gbu_core::Gbu::render_scoped`]) so the shard charges only its
    /// tile range's D&B work and DRAM feature traffic.
    ///
    /// # Panics
    ///
    /// Panics if the device still has a frame in flight.
    pub fn submit_scoped(
        &mut self,
        device: usize,
        splats: &[Splat2D],
        bins: &TileBins,
        camera: &Camera,
        ticket: FrameTicket,
    ) {
        self.submit_scoped_with_prep(device, splats, bins, camera, ticket, 0);
    }

    /// [`DevicePool::submit_scoped`] plus an up-front host-preprocessing
    /// charge, mirroring [`DevicePool::submit_with_prep`].
    ///
    /// # Panics
    ///
    /// Panics if the device still has a frame in flight.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_scoped_with_prep(
        &mut self,
        device: usize,
        splats: &[Splat2D],
        bins: &TileBins,
        camera: &Camera,
        ticket: FrameTicket,
        prep_cycles: u64,
    ) {
        self.devices[device]
            .render_scoped(splats, bins, camera, Vec3::ZERO)
            .expect("cluster dispatches only to idle devices");
        self.track(device, ticket, prep_cycles);
    }

    /// Registers the just-submitted frame on `device` as active, with its
    /// feature traffic streamed over its whole duration (prep included:
    /// the host writes the frame's artifacts over the same window it
    /// occupies the slot).
    fn track(&mut self, device: usize, ticket: FrameTicket, prep: u64) {
        let gbu = &self.devices[device];
        let duration = gbu.in_flight_remaining().expect("frame was just submitted");
        let bytes = gbu.in_flight_dram_bytes().expect("frame was just submitted");
        let demand = bytes as f64 / (duration + prep).max(1) as f64;
        self.active[device] =
            Some(ActiveFrame { ticket, demand, residue: 0.0, started: self.clock, prep });
    }

    /// Device-cycles of work still executing on each device (zero for
    /// idle ones) — the per-device backlog the in-flight-aware admission
    /// estimate seeds its earliest-free schedule with. Optimistic
    /// (device cycles, not contention-stretched wall cycles), so a
    /// rejection remains a proof of unmeetability.
    pub fn in_flight_backlog_per_device(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.in_flight_backlog_into(&mut out);
        out
    }

    /// Allocation-free variant of
    /// [`DevicePool::in_flight_backlog_per_device`]: clears `out` and
    /// fills it in device order, reusing its capacity across admission
    /// probes.
    pub fn in_flight_backlog_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.devices.iter().zip(&self.active).map(|(gbu, slot)| match slot {
            Some(a) => a.prep + gbu.in_flight_remaining().unwrap_or(0),
            None => 0,
        }));
    }

    /// The ticket currently rendering on `device`, if any.
    pub fn active_ticket(&self, device: usize) -> Option<&FrameTicket> {
        self.active[device].as_ref().map(|a| &a.ticket)
    }

    /// Full device occupancy (`max(D&B, Tile PE)` cycles) of the frame
    /// in flight on `device`, fixed at submission — `None` when idle.
    /// The cluster backend records this per shard as the
    /// measured-service feedback behind
    /// `gbu_render::shard::ShardStrategy::Measured`.
    pub fn in_flight_occupancy(&self, device: usize) -> Option<u64> {
        self.active[device].as_ref()?;
        self.devices[device].in_flight_occupancy()
    }

    /// Cancels the frame in flight on `device` through the device's
    /// `cancel_in_flight` hook, freeing the slot immediately. Returns the
    /// cancelled ticket, or `None` when the device was idle (no-op-safe).
    ///
    /// Device cycles already spent on the cancelled frame stay counted as
    /// busy time — cancellation reclaims the future, not the past.
    pub fn cancel(&mut self, device: usize) -> Option<FrameTicket> {
        let a = self.active[device].take()?;
        let was_in_flight = self.devices[device].cancel_in_flight();
        debug_assert!(was_in_flight, "active slot implies an in-flight frame");
        Some(a.ticket)
    }

    /// Progress rate (device-cycles per wall-cycle) of every busy device
    /// under the current contention: 1 when aggregate demand fits the
    /// DRAM budget, uniformly scaled down otherwise.
    fn rate(&self) -> f64 {
        let total: f64 = self.active.iter().flatten().map(|a| a.demand).sum();
        if total <= self.bytes_per_cycle {
            1.0
        } else {
            self.bytes_per_cycle / total
        }
    }

    /// Wall cycles until the earliest in-flight frame completes at the
    /// current rates, or `None` when every device is idle.
    pub fn next_completion_dt(&self) -> Option<u64> {
        let rate = self.rate();
        self.active
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let a = slot.as_ref()?;
                let remaining =
                    (a.prep + self.devices[i].in_flight_remaining()?) as f64 - a.residue;
                Some((remaining / rate).ceil().max(1.0) as u64)
            })
            .min()
    }

    /// Advances the wall clock by `wall_dt` cycles, progressing every busy
    /// device at the shared contention rate, and collects any frames that
    /// complete. The wall clock is strictly monotone: `wall_dt == 0` is
    /// rejected.
    ///
    /// Between two arbitration points the contention rate is constant and
    /// the devices are independent, so the busy devices advance
    /// concurrently on the global `gbu_par` pool; their completions are
    /// merged back in device order, keeping the simulated-cycle results
    /// identical to a serial sweep at any thread count (the regenerated
    /// `BENCH_serve.json` pins this).
    pub fn advance(&mut self, wall_dt: u64) -> Vec<PoolCompletion> {
        assert!(wall_dt > 0, "the simulated clock must move forward");
        let rate = self.rate();
        self.clock += wall_dt;
        let clock = self.clock;

        struct AdvanceJob<'a> {
            device: usize,
            gbu: &'a mut Gbu,
            slot: &'a mut Option<ActiveFrame>,
            busy: u64,
            started: u64,
            completion: Option<PoolCompletion>,
        }
        let mut jobs: Vec<AdvanceJob> = self
            .devices
            .iter_mut()
            .zip(self.active.iter_mut())
            .enumerate()
            .filter(|(_, (_, slot))| slot.is_some())
            .map(|(i, (gbu, slot))| AdvanceJob {
                device: i,
                gbu,
                slot,
                busy: 0,
                started: 0,
                completion: None,
            })
            .collect();

        gbu_par::global().for_each_mut(&mut jobs, |_, job| {
            let a = job.slot.as_mut().expect("jobs hold busy devices only");
            job.started = a.started;
            // Busy credit stops when the frame finishes, even if the
            // caller overshoots the completion event.
            let remaining =
                (a.prep + job.gbu.in_flight_remaining().unwrap_or(0)) as f64 - a.residue;
            let needed_wall = (remaining / rate).ceil().max(0.0) as u64;
            job.busy = wall_dt.min(needed_wall);
            let progress = wall_dt as f64 * rate + a.residue;
            let whole = progress.floor();
            a.residue = progress - whole;
            // Host-prep cycles burn first; only the surplus progresses
            // the GBU.
            let prep_burn = (whole as u64).min(a.prep);
            a.prep -= prep_burn;
            job.gbu.advance(whole as u64 - prep_burn);
            if let Some(frame) = job.gbu.try_collect() {
                let ticket = a.ticket;
                *job.slot = None;
                job.completion =
                    Some(PoolCompletion { ticket, device: job.device, completed_at: clock, frame });
            }
        });

        let mut done = Vec::new();
        let mut total_busy = 0u64;
        for job in jobs {
            self.busy_device_cycles += job.busy;
            total_busy += job.busy;
            if let Some(c) = job.completion {
                if self.recorder.is_enabled() {
                    let labels = gbu_telemetry::Labels {
                        lane: self.lane,
                        lane_generation: self.lane.map(|_| self.lane_generation),
                        device: Some(c.device as u32),
                        session: Some(c.ticket.session.index() as u32),
                        frame: Some(c.ticket.id.index()),
                        ..gbu_telemetry::Labels::default()
                    };
                    self.recorder.span(
                        "device_busy",
                        gbu_telemetry::Domain::Cycles,
                        job.started,
                        c.completed_at,
                        None,
                        labels,
                    );
                }
                done.push(c);
            }
        }
        // Fair-share arbitration below rate 1 means every busy wall
        // cycle progressed the device by only `rate` device-cycles.
        if rate < 1.0 {
            self.dram_stall_cycles += total_busy as f64 * (1.0 - rate);
            self.stall_gauge.set(self.dram_stall_cycles as u64);
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ExecMode;
    use crate::session::{Session, SessionContent, SessionSpec};
    use crate::QosTarget;

    fn prepared() -> Session {
        Session::prepare(
            SessionSpec {
                name: "t".into(),
                content: SessionContent::Synthetic { seed: 3, gaussians: 80 },
                qos: QosTarget::VR_72,
                frames: 4,
                phase: 0.0,
                exec: ExecMode::Unsharded,
            },
            &GbuConfig::paper(),
        )
    }

    fn ticket(n: u32) -> FrameTicket {
        FrameTicket {
            id: crate::FrameId::from_index(u64::from(n)),
            session: crate::SessionId::from_index(0),
            frame: n,
            arrival: 0,
            deadline: u64::MAX,
        }
    }

    #[test]
    fn single_frame_completes_at_base_duration() {
        let session = prepared();
        let mut pool = DevicePool::new(1, &GbuConfig::paper(), &GpuConfig::orin_nx(), 0.5);
        pool.submit(0, session.view(0), ticket(0));
        let dt = pool.next_completion_dt().expect("one frame in flight");
        let done = pool.advance(dt);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].completed_at, pool.clock());
        assert!(pool.idle_device().is_some());
    }

    #[test]
    fn clock_is_monotone_and_utilization_bounded() {
        let session = prepared();
        let mut pool = DevicePool::new(2, &GbuConfig::paper(), &GpuConfig::orin_nx(), 0.5);
        pool.submit(0, session.view(0), ticket(0));
        pool.submit(1, session.view(1), ticket(1));
        let mut last = pool.clock();
        let mut completions = 0;
        while pool.busy_count() > 0 {
            let dt = pool.next_completion_dt().unwrap();
            completions += pool.advance(dt).len();
            assert!(pool.clock() > last, "clock must advance");
            last = pool.clock();
        }
        assert_eq!(completions, 2);
        let u = pool.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn prep_cycles_extend_completion_exactly() {
        let session = prepared();
        let mut plain = DevicePool::new(1, &GbuConfig::paper(), &GpuConfig::orin_nx(), 0.5);
        plain.submit(0, session.view(0), ticket(0));
        let base_dt = plain.next_completion_dt().expect("one frame in flight");

        // The same frame with an up-front host-preprocessing charge
        // completes exactly `prep` wall cycles later (uncontended pool:
        // one wall cycle burns one device cycle).
        let prep = 12_345u64;
        let mut charged = DevicePool::new(1, &GbuConfig::paper(), &GpuConfig::orin_nx(), 0.5);
        charged.submit_with_prep(0, session.view(0), ticket(0), prep);
        let charged_dt = charged.next_completion_dt().expect("one frame in flight");
        assert_eq!(charged_dt, base_dt + prep);

        // Advancing by only the prep burns the charge without touching
        // the GBU frame: the remaining time is the uncharged duration.
        let none = charged.advance(prep);
        assert!(none.is_empty());
        assert_eq!(charged.next_completion_dt().expect("still in flight"), base_dt);
        let done = charged.advance(base_dt);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn zero_prep_is_the_plain_submit_path() {
        let session = prepared();
        let mut a = DevicePool::new(1, &GbuConfig::paper(), &GpuConfig::orin_nx(), 0.5);
        a.submit(0, session.view(0), ticket(0));
        let mut b = DevicePool::new(1, &GbuConfig::paper(), &GpuConfig::orin_nx(), 0.5);
        b.submit_with_prep(0, session.view(0), ticket(0), 0);
        assert_eq!(a.next_completion_dt(), b.next_completion_dt());
    }

    #[test]
    fn starved_bandwidth_slows_completion() {
        let session = prepared();
        // A pool whose DRAM share is tiny: the same frame must take
        // longer in wall cycles than on an uncontended pool.
        let mut fat = DevicePool::new(1, &GbuConfig::paper(), &GpuConfig::orin_nx(), 0.5);
        fat.submit(0, session.view(0), ticket(0));
        let fat_dt = fat.next_completion_dt().unwrap();

        let mut starved = DevicePool::new(1, &GbuConfig::paper(), &GpuConfig::orin_nx(), 1e-6);
        starved.submit(0, session.view(0), ticket(0));
        let starved_dt = starved.next_completion_dt().unwrap();
        assert!(
            starved_dt > fat_dt,
            "bandwidth starvation must stretch the frame: {starved_dt} vs {fat_dt}"
        );
    }

    #[test]
    fn contention_couples_devices() {
        let session = prepared();
        // Low-bandwidth pool: two concurrent frames must each take longer
        // than the same frame alone.
        let share = 1e-4;
        let mut solo = DevicePool::new(2, &GbuConfig::paper(), &GpuConfig::orin_nx(), share);
        solo.submit(0, session.view(0), ticket(0));
        let solo_dt = solo.next_completion_dt().unwrap();

        let mut pair = DevicePool::new(2, &GbuConfig::paper(), &GpuConfig::orin_nx(), share);
        pair.submit(0, session.view(0), ticket(0));
        pair.submit(1, session.view(0), ticket(1));
        let pair_dt = pair.next_completion_dt().unwrap();
        assert!(
            pair_dt > solo_dt,
            "two frames sharing starved DRAM must both slow down: {pair_dt} vs {solo_dt}"
        );
    }

    #[test]
    fn overshoot_does_not_inflate_utilization() {
        let session = prepared();
        let mut pool = DevicePool::new(1, &GbuConfig::paper(), &GpuConfig::orin_nx(), 0.5);
        pool.submit(0, session.view(0), ticket(0));
        let needed = pool.next_completion_dt().unwrap();
        // Step 100x past the completion event: the device was busy for
        // only ~1% of the interval and utilization must say so.
        let done = pool.advance(needed * 100);
        assert_eq!(done.len(), 1);
        let u = pool.utilization();
        assert!(u <= 0.02, "overshoot must not count as busy time: {u}");
    }

    #[test]
    fn cancel_frees_the_device_and_returns_the_ticket() {
        let session = prepared();
        let mut pool = DevicePool::new(1, &GbuConfig::paper(), &GpuConfig::orin_nx(), 0.5);
        // Idle device: no-op.
        assert!(pool.cancel(0).is_none());
        pool.submit(0, session.view(0), ticket(7));
        assert_eq!(pool.active_ticket(0).unwrap().frame, 7);
        let dt = pool.next_completion_dt().unwrap();
        // Render half the frame, then cancel it.
        pool.advance((dt / 2).max(1));
        let cancelled = pool.cancel(0).expect("frame was in flight");
        assert_eq!(cancelled.frame, 7);
        assert!(pool.active_ticket(0).is_none());
        assert_eq!(pool.idle_device(), Some(0), "slot is free immediately");
        assert!(pool.next_completion_dt().is_none());
        // The spent cycles still count as busy time.
        assert!(pool.utilization() > 0.0);
        // The freed device accepts new work.
        pool.submit(0, session.view(1), ticket(8));
        let done = pool.advance(pool.next_completion_dt().unwrap());
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].ticket.frame, 8);
    }

    #[test]
    #[should_panic(expected = "clock must move forward")]
    fn zero_advance_is_rejected() {
        let mut pool = DevicePool::new(1, &GbuConfig::paper(), &GpuConfig::orin_nx(), 0.5);
        pool.advance(0);
    }
}
