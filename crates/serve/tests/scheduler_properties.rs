//! Deterministic property tests for the serving subsystem:
//!
//! 1. **Frame conservation** — every generated frame completes or is
//!    rejected exactly once, under any session mix, pool size, queue
//!    bound and policy;
//! 2. **No EDF deadline inversion** — whenever EDF dispatches, no other
//!    queued frame has an earlier deadline;
//! 3. **Monotone clock** — the pool's simulated clock advances strictly
//!    monotonically through any submit/advance interleaving.

use gbu_hw::GbuConfig;
use gbu_serve::{
    calibrated_clock_ghz, run_sessions, AdmissionControl, DevicePool, Edf, ExecMode, FrameId,
    FrameTicket, Policy, QosTarget, Scheduler, ServeConfig, Session, SessionContent, SessionId,
    SessionSpec,
};
use proptest::prelude::*;

fn workload(n_sessions: usize, frames: u32, seed: u64) -> Vec<Session> {
    (0..n_sessions)
        .map(|i| {
            Session::prepare(
                SessionSpec {
                    name: format!("s{i}"),
                    content: SessionContent::Synthetic {
                        seed: seed + i as u64,
                        gaussians: 30 + 40 * (i % 3),
                    },
                    qos: [QosTarget::AR_60, QosTarget::VR_72, QosTarget::VR_90][i % 3],
                    frames,
                    phase: (i as f64 * 0.37).fract(),
                    exec: ExecMode::Unsharded,
                },
                &GbuConfig::paper(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation: completed + rejected == generated, per session, for
    /// every policy, under varying load and queue bounds.
    #[test]
    fn frame_conservation(
        n_sessions in 2usize..6,
        frames in 2u32..6,
        devices in 1usize..4,
        depth in 1usize..8,
        util_pct in 40u32..250,
        seed in 0u64..1000,
    ) {
        let sessions = workload(n_sessions, frames, seed);
        for policy in Policy::all() {
            let mut cfg = ServeConfig {
                devices,
                policy,
                admission: AdmissionControl { max_queue_depth: depth, ..Default::default() },
                ..ServeConfig::default()
            };
            cfg.gbu.clock_ghz =
                calibrated_clock_ghz(&sessions, devices, f64::from(util_pct) / 100.0);
            let report = run_sessions(cfg, &sessions);
            let generated = n_sessions * frames as usize;
            prop_assert_eq!(report.generated, generated, "policy {:?}", policy);
            prop_assert_eq!(
                report.completed + report.rejected + report.dropped, generated,
                "conservation under {:?}", policy
            );
            for s in &report.sessions {
                prop_assert_eq!(s.completed + s.rejected + s.dropped, frames as usize);
            }
        }
    }

    /// EDF never dispatches past an earlier queued deadline.
    #[test]
    fn edf_has_no_deadline_inversion(
        raw in prop::collection::vec((0u32..8, 0u64..1000, 1u64..5000), 1..40),
        now in 0u64..2000,
    ) {
        let queue: Vec<FrameTicket> = raw
            .iter()
            .enumerate()
            .map(|(i, &(session, arrival, slack))| FrameTicket {
                id: FrameId::from_index(i as u64),
                session: SessionId::from_index(session as usize),
                frame: i as u32,
                arrival,
                deadline: arrival + slack,
            })
            .collect();
        let picked = Edf.pick(&queue, now).expect("non-empty queue");
        let earliest = queue.iter().map(|t| t.deadline).min().expect("non-empty");
        prop_assert_eq!(
            queue[picked].deadline, earliest,
            "EDF picked deadline {} but {} was queued", queue[picked].deadline, earliest
        );
    }

    /// The pool's simulated clock is strictly monotone through arbitrary
    /// submit/advance interleavings, and utilization stays in [0, 1].
    #[test]
    fn pool_clock_is_monotone(
        devices in 1usize..4,
        steps in prop::collection::vec((0u32..3, 1u64..50_000), 5..40),
        seed in 0u64..100,
    ) {
        let session = &workload(1, 1, seed)[0];
        let mut pool = DevicePool::new(
            devices,
            &GbuConfig::paper(),
            &gbu_gpu::GpuConfig::orin_nx(),
            0.5,
        );
        let mut frame = 0u32;
        let mut last_clock = pool.clock();
        for &(action, dt) in &steps {
            if action == 0 {
                if let Some(idle) = pool.idle_device() {
                    let ticket = FrameTicket {
                        id: FrameId::from_index(u64::from(frame)),
                        session: SessionId::from_index(0),
                        frame,
                        arrival: pool.clock(),
                        deadline: u64::MAX,
                    };
                    pool.submit(idle, session.view(frame), ticket);
                    frame += 1;
                    // Submission must not move the clock.
                    prop_assert_eq!(pool.clock(), last_clock);
                    continue;
                }
            }
            // Advance either to the next completion or by a raw step.
            let step = if action == 1 {
                pool.next_completion_dt().unwrap_or(dt)
            } else {
                dt
            };
            pool.advance(step);
            prop_assert!(pool.clock() > last_clock, "clock must strictly advance");
            last_clock = pool.clock();
            let u = pool.utilization();
            prop_assert!((0.0..=1.0).contains(&u), "utilization {u}");
        }
    }
}
