//! Property tests for the reactive serving API:
//!
//! 1. **Step-slicing equivalence** — driving the engine through
//!    `step_until` in arbitrary (proptest-chosen) cycle slices produces a
//!    `ServeReport` *identical* (bit-for-bit, `PartialEq` on every float)
//!    to the one-shot `run_sessions` batch wrapper on the same workload:
//!    step granularity is an observation choice, never a simulation
//!    input;
//! 2. **Frame conservation under detach** — detaching sessions mid-run
//!    stops their timers and cancels their queued/in-flight frames, and
//!    every generated frame still ends in exactly one terminal state
//!    (`completed + rejected + dropped == generated`), per session and in
//!    aggregate;
//! 3. **Event-stream / report consistency** — the typed `ServeEvent`
//!    stream, the `poll` futures and the final `ServeReport` agree on
//!    every count.

use gbu_hw::GbuConfig;
use gbu_serve::{
    calibrated_clock_ghz, run_sessions, AdmissionControl, AutoscaleConfig, BackendKind, ExecMode,
    FleetAction, FleetConfig, FleetEvent, FleetPlan, FrameStatus, MigrationConfig, Policy,
    QosTarget, ServeConfig, ServeEngine, ServeEvent, Session, SessionContent, SessionSpec,
};
use proptest::prelude::*;

fn workload(n_sessions: usize, frames: u32, seed: u64) -> Vec<Session> {
    (0..n_sessions)
        .map(|i| {
            Session::prepare(
                SessionSpec {
                    name: format!("s{i}"),
                    content: SessionContent::Synthetic {
                        seed: seed + i as u64,
                        gaussians: 30 + 40 * (i % 3),
                    },
                    qos: [QosTarget::AR_60, QosTarget::VR_72, QosTarget::VR_90][i % 3],
                    frames,
                    phase: (i as f64 * 0.37).fract(),
                    exec: ExecMode::Unsharded,
                },
                &GbuConfig::paper(),
            )
        })
        .collect()
}

fn config(devices: usize, policy: Policy, depth: usize, deadline_aware: bool) -> ServeConfig {
    ServeConfig {
        devices,
        policy,
        admission: AdmissionControl {
            max_queue_depth: depth,
            reject_unmeetable: deadline_aware,
            ..AdmissionControl::default()
        },
        drop_unmeetable: deadline_aware,
        ..ServeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Arbitrary step slicing replays the identical simulation.
    #[test]
    fn step_slicing_matches_one_shot_run(
        n_sessions in 2usize..5,
        frames in 2u32..5,
        devices in 1usize..3,
        depth in 2usize..8,
        util_pct in 50u32..220,
        seed in 0u64..1000,
        deadline_aware in any::<bool>(),
        slices in prop::collection::vec(1u64..50_000, 1..32),
    ) {
        let sessions = workload(n_sessions, frames, seed);
        for policy in Policy::all() {
            let mut cfg = config(devices, policy, depth, deadline_aware);
            cfg.gbu.clock_ghz =
                calibrated_clock_ghz(&sessions, devices, f64::from(util_pct) / 100.0);

            let one_shot = run_sessions(cfg.clone(), &sessions);

            let mut engine = ServeEngine::new(cfg);
            for s in &sessions {
                engine.attach_session(s.clone());
            }
            let mut now = 0u64;
            let mut events = Vec::new();
            for &slice in &slices {
                now += slice;
                events.extend(engine.step_until(now));
            }
            // Whatever the slices left unfinished, drain it the same way
            // the batch wrapper does.
            events.extend(engine.drain());
            events.extend(engine.finish());
            prop_assert!(engine.is_drained());
            let sliced = engine.report();

            prop_assert_eq!(&sliced, &one_shot, "policy {:?} diverged under slicing", policy);

            // The event stream agrees with the report it accompanied.
            let completed =
                events.iter().filter(|e| matches!(e, ServeEvent::Completed { .. })).count();
            let rejected =
                events.iter().filter(|e| matches!(e, ServeEvent::Rejected { .. })).count();
            let admitted =
                events.iter().filter(|e| matches!(e, ServeEvent::Admitted { .. })).count();
            let started = events.iter().filter(|e| matches!(e, ServeEvent::Started { .. })).count();
            prop_assert_eq!(completed, sliced.completed);
            prop_assert_eq!(rejected, sliced.rejected);
            prop_assert_eq!(admitted + rejected, sliced.generated);
            let dropped = events.iter().filter(|e| matches!(e, ServeEvent::Dropped { .. })).count();
            prop_assert_eq!(dropped, sliced.dropped);
            prop_assert_eq!(started, completed, "the drop pass only cancels queued frames");
        }
    }

    /// Detaching sessions mid-run preserves frame conservation.
    #[test]
    fn conservation_holds_under_mid_run_detach(
        n_sessions in 3usize..6,
        frames in 3u32..7,
        devices in 1usize..3,
        util_pct in 120u32..350,
        seed in 0u64..1000,
        detach_count in 1usize..3,
        detach_after in 1u64..200_000,
    ) {
        let sessions = workload(n_sessions, frames, seed);
        let mut cfg = config(devices, Policy::Edf, 64, false);
        cfg.gbu.clock_ghz = calibrated_clock_ghz(&sessions, devices, f64::from(util_pct) / 100.0);

        let mut engine = ServeEngine::new(cfg);
        let ids: Vec<_> = sessions.iter().map(|s| engine.attach_session(s.clone())).collect();
        engine.step_until(detach_after);
        for id in ids.iter().take(detach_count) {
            prop_assert!(engine.detach_session(*id));
        }
        engine.drain();
        engine.finish();
        prop_assert!(engine.is_drained());
        let report = engine.report();

        // Per-session and aggregate conservation, detached or not.
        prop_assert_eq!(report.sessions.len(), n_sessions, "roster keeps detached sessions");
        for (i, s) in report.sessions.iter().enumerate() {
            prop_assert_eq!(
                s.generated, s.completed + s.rejected + s.dropped,
                "conservation for session {}", i
            );
            prop_assert!(s.generated <= frames as usize);
            if i >= detach_count {
                prop_assert_eq!(s.generated, frames as usize, "survivors generate every frame");
            }
        }
        prop_assert_eq!(
            report.generated,
            report.completed + report.rejected + report.dropped
        );
        let session_total: usize = report.sessions.iter().map(|s| s.generated).sum();
        prop_assert_eq!(session_total, report.generated);
        prop_assert_eq!(report.drop_reasons.session_detached, report.dropped);

        // Nothing is generated beyond the specs' frame budgets.
        prop_assert!(report.generated <= n_sessions * frames as usize);
    }
}

/// A heterogeneous mixed-mode workload for the cluster backend: every
/// third session unsharded, the rest sharded at varying widths and
/// strategies (including `Measured`, whose feedback replanning must
/// also be slicing-invariant).
fn mixed_workload(n_sessions: usize, frames: u32, seed: u64, lanes: usize) -> Vec<Session> {
    use gbu_render::shard::ShardStrategy;
    let mut sessions = workload(n_sessions, frames, seed);
    for (i, s) in sessions.iter_mut().enumerate() {
        s.spec.exec = match i % 3 {
            0 => ExecMode::Unsharded,
            1 => ExecMode::Sharded { shards: 2.min(lanes), strategy: ShardStrategy::Measured },
            _ => ExecMode::Sharded { shards: lanes, strategy: ShardStrategy::CostBalanced },
        };
    }
    sessions
}

/// Attach `sessions`, drive with the given slices (then drain), seal,
/// and return the full event stream plus the report.
fn run_engine(
    cfg: ServeConfig,
    sessions: &[Session],
    slices: &[u64],
) -> (Vec<ServeEvent>, gbu_serve::ServeReport) {
    let mut engine = ServeEngine::new(cfg);
    for s in sessions {
        engine.attach_session(s.clone());
    }
    let mut events = Vec::new();
    let mut now = 0u64;
    for &slice in slices {
        now += slice;
        events.extend(engine.step_until(now));
    }
    events.extend(engine.drain());
    events.extend(engine.finish());
    assert!(engine.is_drained());
    (events, engine.report())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The cluster backend is slicing-invariant too: `step_until` at any
    /// granularity over mixed sharded/unsharded sessions replays the
    /// one-shot `drain` event stream (shard events included) bit for bit.
    #[test]
    fn cluster_step_slicing_matches_one_shot_drain(
        n_sessions in 2usize..5,
        frames in 2u32..4,
        lanes in 2usize..4,
        util_pct in 50u32..200,
        seed in 0u64..1000,
        deadline_aware in any::<bool>(),
        slices in prop::collection::vec(1u64..50_000, 1..24),
    ) {
        let sessions = mixed_workload(n_sessions, frames, seed, lanes);
        let mut cfg = config(1, Policy::Edf, 64, deadline_aware);
        cfg.backend = BackendKind::Cluster { lanes, devices_per_lane: 1 };
        cfg.gbu.clock_ghz =
            calibrated_clock_ghz(&sessions, lanes, f64::from(util_pct) / 100.0);

        let (one_shot_events, one_shot) = run_engine(cfg.clone(), &sessions, &[]);
        let (sliced_events, sliced) = run_engine(cfg, &sessions, &slices);

        prop_assert_eq!(&sliced_events, &one_shot_events, "event streams diverged");
        prop_assert_eq!(&sliced, &one_shot, "reports diverged");

        // Every sharded completion carries its full shard-event preamble.
        for e in &one_shot_events {
            if let ServeEvent::Completed { frame, .. } = e {
                let shards_seen = one_shot_events
                    .iter()
                    .filter(|se| {
                        matches!(se, ServeEvent::ShardCompleted { frame: f, .. } if f == frame)
                    })
                    .count();
                let session = e.session().expect("Completed carries a session").index();
                match sessions[session].spec.exec {
                    ExecMode::Unsharded => prop_assert_eq!(shards_seen, 0),
                    ExecMode::Sharded { shards, .. } => prop_assert_eq!(shards_seen, shards),
                }
            }
        }
        prop_assert_eq!(
            one_shot.generated,
            one_shot.completed + one_shot.rejected + one_shot.dropped,
            "conservation on the cluster backend"
        );
    }

    /// A 1-lane cluster serving unsharded sessions is indistinguishable
    /// from the single-pool backend: identical event streams and reports
    /// — the unsharded event vocabulary is unchanged by the backend
    /// abstraction.
    #[test]
    fn single_and_one_lane_cluster_backends_are_equivalent(
        n_sessions in 2usize..5,
        frames in 2u32..5,
        devices in 1usize..3,
        util_pct in 50u32..220,
        seed in 0u64..1000,
        deadline_aware in any::<bool>(),
    ) {
        let sessions = workload(n_sessions, frames, seed);
        for policy in Policy::all() {
            let mut cfg = config(devices, policy, 8, deadline_aware);
            cfg.gbu.clock_ghz =
                calibrated_clock_ghz(&sessions, devices, f64::from(util_pct) / 100.0);
            let single = run_engine(cfg.clone(), &sessions, &[]);
            cfg.backend = BackendKind::Cluster { lanes: 1, devices_per_lane: devices };
            let cluster = run_engine(cfg, &sessions, &[]);
            prop_assert_eq!(&single.0, &cluster.0, "event streams diverged under {:?}", policy);
            prop_assert_eq!(&single.1, &cluster.1, "reports diverged under {:?}", policy);
        }
    }
}

/// A host-side intervention pinned to an absolute cycle: detach an
/// existing session or attach a fresh one. Applied at identical cycles
/// in both runs being compared, so the only degree of freedom left is
/// step granularity.
#[derive(Clone, Copy, Debug)]
enum Intervention {
    Detach(usize),
    Attach,
}

/// Drives `cfg` over `sessions` with `interventions` applied at their
/// scheduled cycles, stepping additionally at `extra_slices` boundaries,
/// then drains and seals. Both the intervention schedule and the fleet
/// plan inside `cfg` are keyed to absolute cycles, so two calls with
/// different `extra_slices` must replay the identical event stream.
fn run_churny(
    cfg: ServeConfig,
    sessions: &[Session],
    interventions: &[(u64, Intervention)],
    extra_slices: &[u64],
) -> (Vec<ServeEvent>, gbu_serve::ServeReport) {
    let mut engine = ServeEngine::new(cfg);
    let mut ids: Vec<_> = sessions.iter().map(|s| engine.attach_session(s.clone())).collect();
    let mut boundaries: Vec<(u64, Option<Intervention>)> =
        interventions.iter().map(|&(at, i)| (at, Some(i))).collect();
    boundaries.extend(extra_slices.iter().map(|&at| (at, None)));
    boundaries.sort_by_key(|&(at, _)| at);
    let mut events = Vec::new();
    let mut fresh = 0usize;
    for (at, action) in boundaries {
        events.extend(engine.step_until(at));
        match action {
            Some(Intervention::Detach(i)) => {
                engine.detach_session(ids[i % ids.len()]);
            }
            Some(Intervention::Attach) => {
                // A fresh timer-driven session joining mid-churn; its
                // timer phase anchors at the (identical) step horizon.
                let spec = SessionSpec {
                    name: format!("late-{fresh}"),
                    content: SessionContent::Synthetic {
                        seed: 7_000 + fresh as u64,
                        gaussians: 35,
                    },
                    qos: QosTarget::VR_72,
                    frames: 2,
                    phase: 0.25,
                    exec: ExecMode::Unsharded,
                };
                fresh += 1;
                ids.push(engine.attach_session(Session::prepare(spec, &GbuConfig::paper())));
            }
            None => {}
        }
    }
    events.extend(engine.drain());
    events.extend(engine.finish());
    assert!(engine.is_drained());
    (events, engine.report())
}

/// Checks one frame's event subsequence against the lifecycle grammar:
/// `Rejected` alone, or `Admitted` followed by any number of
/// `Started → ShardCompleted* → Requeued` cycles and a queue-side
/// `Dropped`/dispatch, ending in exactly one terminal
/// (`Completed`/`Dropped`).
fn assert_frame_grammar(events: &[&ServeEvent]) {
    #[derive(PartialEq, Debug)]
    enum S {
        Fresh,
        Queued,
        Running,
        Terminal,
    }
    let mut state = S::Fresh;
    for e in events {
        state = match (state, e) {
            (S::Fresh, ServeEvent::Rejected { .. }) => S::Terminal,
            (S::Fresh, ServeEvent::Admitted { .. }) => S::Queued,
            (S::Queued, ServeEvent::Started { .. }) => S::Running,
            (S::Queued, ServeEvent::Dropped { .. }) => S::Terminal,
            (S::Running, ServeEvent::ShardCompleted { .. }) => S::Running,
            (S::Running, ServeEvent::Requeued { .. }) => S::Queued,
            (S::Running, ServeEvent::Completed { .. }) => S::Terminal,
            (S::Running, ServeEvent::Dropped { .. }) => S::Terminal,
            (state, e) => panic!("event {e:?} illegal in state {state:?}"),
        };
    }
    assert_eq!(state, S::Terminal, "every frame ends terminal: {events:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Fleet churn is slicing-invariant: random lane kill/restore plans,
    /// migration, autoscaling and lane reservation, overlaid with random
    /// attach/detach schedules, replay the identical event stream at any
    /// step granularity — and every frame still walks the lifecycle
    /// grammar to exactly one terminal state.
    #[test]
    fn fleet_churn_is_slicing_invariant_and_conserves_frames(
        n_sessions in 3usize..6,
        frames in 2u32..4,
        lanes in 2usize..4,
        util_pct in 80u32..260,
        seed in 0u64..1000,
        plan_raw in prop::collection::vec((1u64..500_000, 0usize..4, any::<bool>()), 0..8),
        interventions_raw in prop::collection::vec((1u64..400_000, 0usize..8), 0..5),
        migration in any::<bool>(),
        rebalance in any::<bool>(),
        autoscale in any::<bool>(),
        lane_reservation in any::<bool>(),
        slices in prop::collection::vec(1u64..60_000, 1..24),
    ) {
        let sessions = mixed_workload(n_sessions, frames, seed, lanes);
        let mut cfg = config(1, Policy::Edf, 64, false);
        cfg.backend = BackendKind::Cluster { lanes, devices_per_lane: 1 };
        cfg.gbu.clock_ghz = calibrated_clock_ghz(&sessions, lanes, f64::from(util_pct) / 100.0);
        cfg.fleet = FleetConfig {
            plan: FleetPlan::new(
                plan_raw
                    .iter()
                    .map(|&(at, lane, kill)| FleetEvent {
                        at,
                        action: if kill {
                            FleetAction::Kill(lane % lanes)
                        } else {
                            FleetAction::Restore(lane % lanes)
                        },
                    })
                    .collect(),
            ),
            autoscale: autoscale.then(|| AutoscaleConfig {
                interval: 120_000,
                cooldown_ticks: 1,
                ..AutoscaleConfig::default()
            }),
            migration: migration.then_some(MigrationConfig { rebalance }),
            lane_reservation,
        };
        let interventions: Vec<(u64, Intervention)> = interventions_raw
            .iter()
            .map(|&(at, k)| {
                let kind = if k < n_sessions {
                    Intervention::Detach(k)
                } else {
                    Intervention::Attach
                };
                (at, kind)
            })
            .collect();

        let (coarse_events, coarse) = run_churny(cfg.clone(), &sessions, &interventions, &[]);
        let (fine_events, fine) = run_churny(cfg, &sessions, &interventions, &slices);
        prop_assert_eq!(&fine_events, &coarse_events, "event streams diverged under slicing");
        prop_assert_eq!(&fine, &coarse, "reports diverged under slicing");

        // Conservation with requeues explicitly non-terminal.
        prop_assert_eq!(
            coarse.generated,
            coarse.completed + coarse.rejected + coarse.dropped,
            "completed + rejected + dropped == generated under churn"
        );
        let requeues = coarse_events
            .iter()
            .filter(|e| matches!(e, ServeEvent::Requeued { .. }))
            .count();
        prop_assert_eq!(requeues, coarse.requeued, "report agrees with the event stream");
        let churn = coarse_events
            .iter()
            .filter(|e| matches!(e, ServeEvent::LaneDown { .. } | ServeEvent::LaneUp { .. }))
            .count();
        prop_assert_eq!(churn, coarse.lane_churn);

        // Per-frame lifecycle grammar, requeue cycles included.
        let max_frame = coarse_events.iter().filter_map(|e| e.frame()).map(|f| f.index()).max();
        if let Some(max_frame) = max_frame {
            for f in 0..=max_frame {
                let of_frame: Vec<&ServeEvent> = coarse_events
                    .iter()
                    .filter(|e| e.frame().is_some_and(|id| id.index() == f))
                    .collect();
                assert_frame_grammar(&of_frame);
            }
        }
    }
}

/// Pushed frames and timer frames share one queue, one id space and one
/// conservation law.
#[test]
fn pushed_and_timer_frames_share_conservation() {
    let sessions = workload(2, 3, 99);
    let mut cfg = config(1, Policy::Edf, 64, false);
    cfg.gbu.clock_ghz = calibrated_clock_ghz(&sessions, 1, 1.5);
    let period = sessions[0].spec.qos.period_cycles(cfg.gbu.clock_ghz);

    let mut engine = ServeEngine::new(cfg);
    let ids: Vec<_> = sessions.iter().map(|s| engine.attach_session(s.clone())).collect();
    // Interleave stepping with pushed submissions on top of the timers.
    let mut pushed = Vec::new();
    for k in 1..=4u64 {
        engine.step_until(k * period / 2);
        pushed.push(engine.handle().submit_frame(ids[(k % 2) as usize], k as u32));
    }
    engine.drain();
    engine.finish();
    assert!(engine.is_drained());

    for f in &pushed {
        let status = engine.poll(*f);
        assert!(
            matches!(
                status,
                FrameStatus::Completed { .. } | FrameStatus::Rejected(_) | FrameStatus::Dropped(_)
            ),
            "pushed frame must reach a terminal state, got {status:?}"
        );
    }
    let report = engine.report();
    assert_eq!(report.generated, 2 * 3 + 4, "timer frames + pushed frames");
    assert_eq!(report.generated, report.completed + report.rejected + report.dropped);
}
