//! Property tests for the reactive serving API:
//!
//! 1. **Step-slicing equivalence** — driving the engine through
//!    `step_until` in arbitrary (proptest-chosen) cycle slices produces a
//!    `ServeReport` *identical* (bit-for-bit, `PartialEq` on every float)
//!    to the one-shot `run_sessions` batch wrapper on the same workload:
//!    step granularity is an observation choice, never a simulation
//!    input;
//! 2. **Frame conservation under detach** — detaching sessions mid-run
//!    stops their timers and cancels their queued/in-flight frames, and
//!    every generated frame still ends in exactly one terminal state
//!    (`completed + rejected + dropped == generated`), per session and in
//!    aggregate;
//! 3. **Event-stream / report consistency** — the typed `ServeEvent`
//!    stream, the `poll` futures and the final `ServeReport` agree on
//!    every count.

use gbu_hw::GbuConfig;
use gbu_serve::{
    calibrated_clock_ghz, run_sessions, AdmissionControl, FrameStatus, Policy, QosTarget,
    ServeConfig, ServeEngine, ServeEvent, Session, SessionContent, SessionSpec,
};
use proptest::prelude::*;

fn workload(n_sessions: usize, frames: u32, seed: u64) -> Vec<Session> {
    (0..n_sessions)
        .map(|i| {
            Session::prepare(
                SessionSpec {
                    name: format!("s{i}"),
                    content: SessionContent::Synthetic {
                        seed: seed + i as u64,
                        gaussians: 30 + 40 * (i % 3),
                    },
                    qos: [QosTarget::AR_60, QosTarget::VR_72, QosTarget::VR_90][i % 3],
                    frames,
                    phase: (i as f64 * 0.37).fract(),
                },
                &GbuConfig::paper(),
            )
        })
        .collect()
}

fn config(devices: usize, policy: Policy, depth: usize, deadline_aware: bool) -> ServeConfig {
    ServeConfig {
        devices,
        policy,
        admission: AdmissionControl {
            max_queue_depth: depth,
            reject_unmeetable: deadline_aware,
            ..AdmissionControl::default()
        },
        drop_unmeetable: deadline_aware,
        ..ServeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Arbitrary step slicing replays the identical simulation.
    #[test]
    fn step_slicing_matches_one_shot_run(
        n_sessions in 2usize..5,
        frames in 2u32..5,
        devices in 1usize..3,
        depth in 2usize..8,
        util_pct in 50u32..220,
        seed in 0u64..1000,
        deadline_aware in any::<bool>(),
        slices in prop::collection::vec(1u64..50_000, 1..32),
    ) {
        let sessions = workload(n_sessions, frames, seed);
        for policy in Policy::all() {
            let mut cfg = config(devices, policy, depth, deadline_aware);
            cfg.gbu.clock_ghz =
                calibrated_clock_ghz(&sessions, devices, f64::from(util_pct) / 100.0);

            let one_shot = run_sessions(cfg.clone(), &sessions);

            let mut engine = ServeEngine::new(cfg);
            for s in &sessions {
                engine.attach_session(s.clone());
            }
            let mut now = 0u64;
            let mut events = Vec::new();
            for &slice in &slices {
                now += slice;
                events.extend(engine.step_until(now));
            }
            // Whatever the slices left unfinished, drain it the same way
            // the batch wrapper does.
            events.extend(engine.drain());
            events.extend(engine.finish());
            prop_assert!(engine.is_drained());
            let sliced = engine.report();

            prop_assert_eq!(&sliced, &one_shot, "policy {:?} diverged under slicing", policy);

            // The event stream agrees with the report it accompanied.
            let completed =
                events.iter().filter(|e| matches!(e, ServeEvent::Completed { .. })).count();
            let rejected =
                events.iter().filter(|e| matches!(e, ServeEvent::Rejected { .. })).count();
            let admitted =
                events.iter().filter(|e| matches!(e, ServeEvent::Admitted { .. })).count();
            let started = events.iter().filter(|e| matches!(e, ServeEvent::Started { .. })).count();
            prop_assert_eq!(completed, sliced.completed);
            prop_assert_eq!(rejected, sliced.rejected);
            prop_assert_eq!(admitted + rejected, sliced.generated);
            let dropped = events.iter().filter(|e| matches!(e, ServeEvent::Dropped { .. })).count();
            prop_assert_eq!(dropped, sliced.dropped);
            prop_assert_eq!(started, completed, "the drop pass only cancels queued frames");
        }
    }

    /// Detaching sessions mid-run preserves frame conservation.
    #[test]
    fn conservation_holds_under_mid_run_detach(
        n_sessions in 3usize..6,
        frames in 3u32..7,
        devices in 1usize..3,
        util_pct in 120u32..350,
        seed in 0u64..1000,
        detach_count in 1usize..3,
        detach_after in 1u64..200_000,
    ) {
        let sessions = workload(n_sessions, frames, seed);
        let mut cfg = config(devices, Policy::Edf, 64, false);
        cfg.gbu.clock_ghz = calibrated_clock_ghz(&sessions, devices, f64::from(util_pct) / 100.0);

        let mut engine = ServeEngine::new(cfg);
        let ids: Vec<_> = sessions.iter().map(|s| engine.attach_session(s.clone())).collect();
        engine.step_until(detach_after);
        for id in ids.iter().take(detach_count) {
            prop_assert!(engine.detach_session(*id));
        }
        engine.drain();
        engine.finish();
        prop_assert!(engine.is_drained());
        let report = engine.report();

        // Per-session and aggregate conservation, detached or not.
        prop_assert_eq!(report.sessions.len(), n_sessions, "roster keeps detached sessions");
        for (i, s) in report.sessions.iter().enumerate() {
            prop_assert_eq!(
                s.generated, s.completed + s.rejected + s.dropped,
                "conservation for session {}", i
            );
            prop_assert!(s.generated <= frames as usize);
            if i >= detach_count {
                prop_assert_eq!(s.generated, frames as usize, "survivors generate every frame");
            }
        }
        prop_assert_eq!(
            report.generated,
            report.completed + report.rejected + report.dropped
        );
        let session_total: usize = report.sessions.iter().map(|s| s.generated).sum();
        prop_assert_eq!(session_total, report.generated);
        prop_assert_eq!(report.drop_reasons.session_detached, report.dropped);

        // Nothing is generated beyond the specs' frame budgets.
        prop_assert!(report.generated <= n_sessions * frames as usize);
    }
}

/// Pushed frames and timer frames share one queue, one id space and one
/// conservation law.
#[test]
fn pushed_and_timer_frames_share_conservation() {
    let sessions = workload(2, 3, 99);
    let mut cfg = config(1, Policy::Edf, 64, false);
    cfg.gbu.clock_ghz = calibrated_clock_ghz(&sessions, 1, 1.5);
    let period = sessions[0].spec.qos.period_cycles(cfg.gbu.clock_ghz);

    let mut engine = ServeEngine::new(cfg);
    let ids: Vec<_> = sessions.iter().map(|s| engine.attach_session(s.clone())).collect();
    // Interleave stepping with pushed submissions on top of the timers.
    let mut pushed = Vec::new();
    for k in 1..=4u64 {
        engine.step_until(k * period / 2);
        pushed.push(engine.handle().submit_frame(ids[(k % 2) as usize], k as u32));
    }
    engine.drain();
    engine.finish();
    assert!(engine.is_drained());

    for f in &pushed {
        let status = engine.poll(*f);
        assert!(
            matches!(
                status,
                FrameStatus::Completed { .. } | FrameStatus::Rejected(_) | FrameStatus::Dropped(_)
            ),
            "pushed frame must reach a terminal state, got {status:?}"
        );
    }
    let report = engine.report();
    assert_eq!(report.generated, 2 * 3 + 4, "timer frames + pushed frames");
    assert_eq!(report.generated, report.completed + report.rejected + report.dropped);
}
