//! Telemetry pins for the serving stack:
//!
//! 1. **No perturbation** — the same mixed sharded/unsharded cluster
//!    workload run with telemetry disabled and with telemetry recording
//!    at `High` verbosity produces a bit-identical `ServeEvent` stream
//!    and a byte-identical `ServeReport` JSON: observability never feeds
//!    back into the simulation (this is what keeps the committed
//!    `BENCH_serve.json` reproducible with tracing off *or* on);
//! 2. **Trace / metrics reconciliation** (property) — across random
//!    attach/detach/overload schedules and *any* `metrics_window`, the
//!    whole-run `LifetimeCounts` conserve frames, the recorded trace is
//!    well-nested, and the `TraceSummary` frame fold agrees with
//!    `ServeMetrics` frame by frame, to the cycle.

use gbu_hw::GbuConfig;
use gbu_serve::{
    calibrated_clock_ghz, AdmissionControl, BackendKind, ExecMode, Policy, QosTarget, ServeConfig,
    ServeEngine, ServeEvent, ServeReport, Session, SessionContent, SessionSpec,
};
use gbu_telemetry::{validate, Recorder, TraceSummary, Verbosity};
use proptest::prelude::*;

fn workload(n_sessions: usize, frames: u32, seed: u64) -> Vec<Session> {
    (0..n_sessions)
        .map(|i| {
            Session::prepare(
                SessionSpec {
                    name: format!("s{i}"),
                    content: SessionContent::Synthetic {
                        seed: seed + i as u64,
                        gaussians: 30 + 40 * (i % 3),
                    },
                    qos: [QosTarget::AR_60, QosTarget::VR_72, QosTarget::VR_90][i % 3],
                    frames,
                    phase: (i as f64 * 0.37).fract(),
                    exec: ExecMode::Unsharded,
                },
                &GbuConfig::paper(),
            )
        })
        .collect()
}

/// Every third session unsharded, the rest sharded — shard spans and
/// per-lane folds get exercised alongside the classic path.
fn mixed_workload(n_sessions: usize, frames: u32, seed: u64, lanes: usize) -> Vec<Session> {
    use gbu_render::shard::ShardStrategy;
    let mut sessions = workload(n_sessions, frames, seed);
    for (i, s) in sessions.iter_mut().enumerate() {
        s.spec.exec = match i % 3 {
            0 => ExecMode::Unsharded,
            1 => ExecMode::Sharded { shards: 2.min(lanes), strategy: ShardStrategy::Measured },
            _ => ExecMode::Sharded { shards: lanes, strategy: ShardStrategy::CostBalanced },
        };
    }
    sessions
}

fn cluster_config(lanes: usize, depth: usize, deadline_aware: bool) -> ServeConfig {
    ServeConfig {
        backend: BackendKind::Cluster { lanes, devices_per_lane: 1 },
        policy: Policy::Edf,
        admission: AdmissionControl {
            max_queue_depth: depth,
            reject_unmeetable: deadline_aware,
            ..AdmissionControl::default()
        },
        drop_unmeetable: deadline_aware,
        ..ServeConfig::default()
    }
}

/// Attach, step through `slices` (detaching `detach_count` sessions at
/// the first slice boundary past `detach_after`), drain, seal.
fn run_engine(
    cfg: ServeConfig,
    sessions: &[Session],
    slices: &[u64],
    detach_count: usize,
    detach_after: u64,
) -> (Vec<ServeEvent>, ServeReport) {
    let mut engine = ServeEngine::new(cfg);
    let ids: Vec<_> = sessions.iter().map(|s| engine.attach_session(s.clone())).collect();
    let mut events = Vec::new();
    let mut now = 0u64;
    let mut detached = false;
    for &slice in slices {
        now += slice;
        events.extend(engine.step_until(now));
        if !detached && now >= detach_after {
            detached = true;
            for id in ids.iter().take(detach_count) {
                engine.detach_session(*id);
            }
        }
    }
    if !detached {
        for id in ids.iter().take(detach_count) {
            engine.detach_session(*id);
        }
    }
    events.extend(engine.drain());
    events.extend(engine.finish());
    assert!(engine.is_drained());
    (events, engine.report())
}

/// Recording at the highest verbosity is invisible to serving results:
/// identical event stream, byte-identical report JSON.
#[test]
fn recording_does_not_perturb_serving() {
    let lanes = 3;
    let sessions = mixed_workload(5, 3, 42, lanes);
    let mut cfg = cluster_config(lanes, 8, true);
    cfg.gbu.clock_ghz = calibrated_clock_ghz(&sessions, lanes, 1.2);

    let mut off = cfg.clone();
    off.telemetry = Recorder::disabled();
    let (events_off, report_off) = run_engine(off, &sessions, &[10_000, 250_000], 1, 200_000);

    let recorder = Recorder::enabled(Verbosity::High);
    let mut on = cfg;
    on.telemetry = recorder.clone();
    let (events_on, report_on) = run_engine(on, &sessions, &[10_000, 250_000], 1, 200_000);

    assert_eq!(events_on, events_off, "telemetry changed the event stream");
    assert_eq!(report_on.to_json(), report_off.to_json(), "telemetry changed the report JSON");

    // And the enabled run did record a reconcilable trace.
    let trace = recorder.snapshot();
    validate(&trace).expect("trace must be well-nested and frame-partitioned");
    let summary = TraceSummary::from_trace(&trace);
    assert_eq!(summary.frame_count(), report_on.lifetime.completed as u64);
    assert!(!summary.lanes.is_empty(), "cluster lanes must fold device_busy spans");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Satellite 3: `LifetimeCounts` conservation and trace/metrics
    /// agreement across random attach/detach/overload schedules with
    /// any `metrics_window`.
    #[test]
    fn trace_reconciles_with_metrics_across_schedules(
        n_sessions in 3usize..6,
        frames in 2u32..5,
        lanes in 2usize..4,
        depth in 2usize..8,
        util_pct in 60u32..300,
        seed in 0u64..1000,
        deadline_aware in any::<bool>(),
        detach_count in 0usize..3,
        detach_after in 1u64..300_000,
        window_raw in 0usize..40,
        slices in prop::collection::vec(1u64..50_000, 1..24),
    ) {
        // 0 encodes "no window" (full retention).
        let window = (window_raw > 0).then_some(window_raw);
        let sessions = mixed_workload(n_sessions, frames, seed, lanes);
        let recorder = Recorder::enabled(Verbosity::Normal);
        let mut cfg = cluster_config(lanes, depth, deadline_aware);
        cfg.metrics_window = window;
        cfg.telemetry = recorder.clone();
        cfg.gbu.clock_ghz =
            calibrated_clock_ghz(&sessions, lanes, f64::from(util_pct) / 100.0);

        let (events, report) =
            run_engine(cfg, &sessions, &slices, detach_count, detach_after);

        // Whole-run conservation, independent of the retention window.
        let life = report.lifetime;
        prop_assert_eq!(life.generated, life.completed + life.rejected + life.dropped);
        prop_assert!(life.missed <= life.completed);
        // The windowed report never exceeds lifetime totals.
        prop_assert!(report.completed <= life.completed);
        prop_assert!(report.rejected <= life.rejected);
        prop_assert!(report.dropped <= life.dropped);
        if window.is_none() {
            prop_assert_eq!(report.completed, life.completed);
            prop_assert_eq!(report.generated, life.generated);
        }

        // The trace reconciles with the metrics regardless of the window:
        // spans cover the whole run, like `LifetimeCounts`.
        let trace = recorder.snapshot();
        prop_assert!(validate(&trace).is_ok(), "{:?}", validate(&trace));
        let summary = TraceSummary::from_trace(&trace);
        prop_assert_eq!(summary.frame_count(), life.completed as u64);
        prop_assert_eq!(trace.counter("serve.completed").unwrap_or(0), life.completed as u64);
        prop_assert_eq!(trace.counter("serve.admitted").unwrap_or(0) as usize,
            events.iter().filter(|e| matches!(e, ServeEvent::Admitted { .. })).count());

        // Frame-by-frame: every Completed event has exactly one frame
        // span whose duration is the event's latency to the cycle, cut
        // exactly into queue-wait + service.
        let mut completed_events = 0usize;
        for e in &events {
            let ServeEvent::Completed { frame, session, latency_cycles, .. } = e else {
                continue;
            };
            completed_events += 1;
            let stats: Vec<_> = summary
                .frames
                .iter()
                .filter(|f| f.frame == frame.index() && f.session == session.index() as u32)
                .collect();
            prop_assert_eq!(stats.len(), 1, "one frame span per completion");
            let f = stats[0];
            prop_assert_eq!(f.latency_cycles, *latency_cycles, "latency must match to the cycle");
            prop_assert_eq!(f.queue_wait_cycles + f.service_cycles, f.latency_cycles);
        }
        prop_assert_eq!(completed_events, life.completed);

        // Shard spans fold onto lanes consistently with shard events.
        let shard_events =
            events.iter().filter(|e| matches!(e, ServeEvent::ShardCompleted { .. })).count();
        let dropped_after_shards = events.iter().any(|e| matches!(e, ServeEvent::Dropped { .. }));
        let folded: u64 = summary.lanes.iter().map(|l| l.shards).sum();
        if !dropped_after_shards {
            prop_assert_eq!(folded as usize, shard_events);
        } else {
            // Dropped sharded frames purge their buffered shard spans.
            prop_assert!(folded as usize <= shard_events);
        }
    }
}
