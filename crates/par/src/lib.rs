//! A hand-rolled scoped thread pool for the render hot path.
//!
//! The container this workspace builds in has no crates.io access, so —
//! mirroring the offline shims under `crates/compat` — this crate
//! provides the small slice of `rayon`-style functionality the renderer
//! needs, on `std::thread` alone:
//!
//! - a [`ThreadPool`] of persistent workers (no per-call thread spawn,
//!   so even the thousands of tiny parallel regions of a serving sweep
//!   stay cheap), driving *scoped* closures that may borrow caller stack
//!   data;
//! - [`ThreadPool::map_indexed`] — a parallel map whose output ordering
//!   is **index-stable**: element `i` of the result is `f(i, &items[i])`
//!   no matter which worker computed it or when, so parallel results are
//!   bit-identical to serial;
//! - [`ThreadPool::for_each_mut`] /
//!   [`ThreadPool::for_each_mut_with`] — parallel in-place mutation of
//!   disjoint jobs (e.g. one tile row of a frame buffer each), the
//!   latter with one reusable scratch state per worker so the hot loop
//!   itself allocates nothing.
//!
//! # Determinism
//!
//! Work is claimed dynamically (an atomic index), so *which worker* runs
//! a job varies run to run — but every primitive writes its result by
//! job index into storage owned by that job alone, and jobs never share
//! mutable state, so the *outputs* are identical across any thread count
//! including 1. The renderer's property tests pin this bit-for-bit.
//!
//! # Panics
//!
//! A panic inside a parallel closure is caught on the worker, the batch
//! is run to completion, and the payload is re-raised on the calling
//! thread — the same contract as `std::thread::scope`.
//!
//! # Nesting
//!
//! The pool executes one parallel region at a time. A parallel closure
//! that re-enters the pool (or a second thread racing for it) simply
//! runs its region inline on the calling worker — correct, just serial —
//! so nested use can never deadlock.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Environment variable overriding the global pool's worker count.
pub const THREADS_ENV: &str = "GBU_THREADS";

/// Type-erased pointer to the batch closure. The lifetime is erased
/// (workers see it as `'static`); soundness comes from [`ThreadPool::run`]
/// never returning — not even by unwinding — before every participant
/// has finished with it.
struct TaskPtr(*const (dyn Fn(usize) + Sync + 'static));
// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the pointer only crosses threads inside one `run` batch, which
// outlives all uses (see `FinishGuard`).
unsafe impl Send for TaskPtr {}

/// One in-flight parallel region.
struct Job {
    task: TaskPtr,
    /// Batch identity, so a worker never claims the same batch twice.
    epoch: u64,
    /// Worker slots still claimable (ids `1..workers`; the caller is 0).
    slots: usize,
    next_slot: usize,
    /// Participants currently inside the closure.
    running: usize,
    /// First panic payload raised by a participant.
    panic: Option<Box<dyn Any + Send>>,
}

struct State {
    job: Option<Job>,
    epoch: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new batch.
    work: Condvar,
    /// The batch owner waits here for participants to finish.
    done: Condvar,
}

/// A fixed-size pool of persistent worker threads executing scoped
/// parallel regions. See the crate docs for the determinism, panic and
/// nesting contracts.
pub struct ThreadPool {
    threads: usize,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.threads).finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` total workers (clamped to ≥ 1).
    /// `threads - 1` persistent threads are spawned; the calling thread
    /// is always participant 0 of each batch, so `new(1)` spawns nothing
    /// and every primitive runs inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State { job: None, epoch: 0, shutdown: false }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { threads, shared, handles }
    }

    /// Total worker count (including the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when the pool runs everything inline on the caller.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Executes `task(worker_id)` on up to `workers` participants
    /// concurrently (ids `0..workers`, id 0 being the calling thread)
    /// and returns once all of them have finished. The closure may
    /// borrow caller stack data — this call never returns (even by
    /// panic) while a participant is still inside it.
    ///
    /// At high trace verbosity (`GBU_TRACE=2`) each participant's stay
    /// in the batch is recorded as a `par_worker` wall span, making pool
    /// imbalance visible in the timeline; otherwise the telemetry check
    /// is one branch per *batch*, not per item.
    fn run(&self, workers: usize, task: &(dyn Fn(usize) + Sync)) {
        let recorder = gbu_telemetry::global();
        if recorder.detailed() {
            let traced = move |w: usize| {
                let _span =
                    recorder.wall_span("par_worker", gbu_telemetry::Labels::worker(w as u32));
                task(w);
            };
            self.run_inner(workers, &traced);
        } else {
            self.run_inner(workers, task);
        }
    }

    /// The untraced batch executor behind [`ThreadPool::run`].
    fn run_inner(&self, workers: usize, task: &(dyn Fn(usize) + Sync)) {
        let workers = workers.clamp(1, self.threads);
        if workers == 1 {
            task(0);
            return;
        }
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            if st.job.is_some() {
                // Busy (nested or concurrent use): run inline instead of
                // queueing behind the active batch — see crate docs.
                drop(st);
                task(0);
                return;
            }
            st.epoch += 1;
            let ptr = task as *const (dyn Fn(usize) + Sync);
            // SAFETY: lifetime erasure only; `FinishGuard` below keeps
            // this frame alive until every participant is done.
            let task = TaskPtr(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(ptr)
            });
            st.job = Some(Job {
                task,
                epoch: st.epoch,
                slots: workers - 1,
                next_slot: 1,
                running: 0,
                panic: None,
            });
        }
        self.shared.work.notify_all();
        let guard = FinishGuard { shared: &self.shared };
        task(0);
        drop(guard); // waits for workers; re-raises a worker panic
    }

    /// Parallel, index-stable map: returns `[f(0, &items[0]), …]` exactly
    /// as a serial loop would, computed on up to [`ThreadPool::threads`]
    /// workers. Empty input returns an empty vector without touching the
    /// pool.
    pub fn map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let slots = SendPtr(out.as_mut_ptr());
        // Claim items in small contiguous chunks: one atomic per chunk,
        // and neighbouring items stay on one worker for cache locality.
        let chunk = (n / (workers * 16)).max(1);
        let next = AtomicUsize::new(0);
        self.run(workers, &|_| loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            #[allow(clippy::needless_range_loop)]
            // index i is the contract: out[i] = f(i, items[i])
            for i in start..(start + chunk).min(n) {
                let r = f(i, &items[i]);
                // SAFETY: every index is claimed by exactly one worker
                // (fetch_add hands out disjoint ranges), so this is the
                // only live `&mut` to slot `i`.
                unsafe { *slots.slot(i) = Some(r) };
            }
        });
        out.into_iter().map(|r| r.expect("every index was claimed")).collect()
    }

    /// Parallel in-place pass over disjoint jobs: calls `f(i, &mut
    /// jobs[i])` for every index, each exactly once, on up to
    /// [`ThreadPool::threads`] workers.
    pub fn for_each_mut<T, F>(&self, jobs: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        // One unit scratch per possible participant (a Vec of ZSTs never
        // heap-allocates), so this adds no worker cap and no allocation.
        let mut unit_scratch = vec![(); self.threads];
        self.for_each_mut_with(&mut unit_scratch, jobs, |_, i, job| f(i, job));
    }

    /// Like [`ThreadPool::for_each_mut`], with one reusable scratch state
    /// per worker: participant `w` works through jobs with exclusive use
    /// of `scratch[w]`. At most `min(threads, scratch.len(), jobs.len())`
    /// participants run, so a caller-owned `Vec<S>` sized once to
    /// [`ThreadPool::threads`] makes the whole pass allocation-free.
    pub fn for_each_mut_with<S, T, F>(&self, scratch: &mut [S], jobs: &mut [T], f: F)
    where
        S: Send,
        T: Send,
        F: Fn(&mut S, usize, &mut T) + Sync,
    {
        let n = jobs.len();
        if n == 0 {
            return;
        }
        let workers = self.threads.min(n).min(scratch.len()).max(1);
        if workers == 1 {
            let s = scratch.first_mut().expect("scratch may not be empty");
            for (i, job) in jobs.iter_mut().enumerate() {
                f(s, i, job);
            }
            return;
        }
        let jobs_ptr = SendPtr(jobs.as_mut_ptr());
        let scratch_ptr = SendPtr(scratch.as_mut_ptr());
        let next = AtomicUsize::new(0);
        self.run(workers, &|w| {
            // SAFETY: participant ids are unique within a batch and
            // `w < workers <= scratch.len()`, so this is the only live
            // `&mut` to `scratch[w]`.
            let s = unsafe { &mut *scratch_ptr.slot(w) };
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: each job index is claimed exactly once.
                f(s, i, unsafe { &mut *jobs_ptr.slot(i) });
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Raw-pointer wrapper so a `Sync` closure may capture a base pointer to
/// storage whose elements the claiming discipline hands out disjointly.
/// (Access goes through [`SendPtr::slot`] rather than the field so the
/// 2021-edition disjoint capture grabs the wrapper, not the bare `*mut`.)
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Pointer to element `i` of the wrapped base pointer.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds of the allocation the base pointer came
    /// from; the caller's claiming discipline must guarantee no two live
    /// `&mut` to the same slot.
    unsafe fn slot(&self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

// SAFETY: access discipline is enforced at each use site (disjoint
// indices / unique worker ids), never by this wrapper alone.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Blocks until the current batch's workers are done when dropped, and
/// re-raises the first worker panic (unless the caller is already
/// unwinding, in which case the caller's panic wins).
struct FinishGuard<'a> {
    shared: &'a Shared,
}

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        let payload = {
            let mut st = self.shared.state.lock().expect("pool lock");
            if let Some(j) = st.job.as_mut() {
                j.slots = 0; // no late joiners
            }
            while st.job.as_ref().is_some_and(|j| j.running > 0) {
                st = self.shared.done.wait(st).expect("pool lock");
            }
            st.job.take().and_then(|j| j.panic)
        };
        if let Some(p) = payload {
            if !std::thread::panicking() {
                resume_unwind(p);
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let (task, slot, epoch) = {
            let mut st = shared.state.lock().expect("pool lock");
            loop {
                if st.shutdown {
                    return;
                }
                match st.job.as_mut() {
                    Some(j) if j.epoch != seen_epoch && j.slots > 0 => {
                        seen_epoch = j.epoch;
                        let slot = j.next_slot;
                        j.next_slot += 1;
                        j.slots -= 1;
                        j.running += 1;
                        break (TaskPtr(j.task.0), slot, j.epoch);
                    }
                    _ => st = shared.work.wait(st).expect("pool lock"),
                }
            }
        };
        // SAFETY: the batch owner blocks in `FinishGuard` until
        // `running` returns to zero, so the closure outlives this call.
        let f = unsafe { &*task.0 };
        let result = catch_unwind(AssertUnwindSafe(|| f(slot)));
        let mut st = shared.state.lock().expect("pool lock");
        if let Some(j) = st.job.as_mut() {
            debug_assert_eq!(j.epoch, epoch, "job changed under a participant");
            if let Err(p) = result {
                j.panic.get_or_insert(p);
            }
            j.running -= 1;
            if j.running == 0 {
                shared.done.notify_all();
            }
        }
    }
}

/// Worker count for the global pool: the `GBU_THREADS` environment
/// variable when set to a positive integer, otherwise the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available(),
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The process-wide pool used by the renderer's public entry points.
/// Sized once, on first use, from [`default_threads`].
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_index_stable() {
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let out = pool.map_indexed(&items, |i, &x| x * 2 + i as u64);
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, items[i] * 2 + i as u64);
        }
    }

    #[test]
    fn empty_input_is_a_noop() {
        let pool = ThreadPool::new(4);
        let out: Vec<u32> = pool.map_indexed(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
        pool.for_each_mut(&mut [] as &mut [u32], |_, _| unreachable!());
    }

    #[test]
    fn for_each_mut_visits_every_job_once() {
        let pool = ThreadPool::new(3);
        let mut jobs = vec![0u32; 257];
        pool.for_each_mut(&mut jobs, |i, j| *j += 1 + i as u32);
        for (i, &j) in jobs.iter().enumerate() {
            assert_eq!(j, 1 + i as u32);
        }
    }

    #[test]
    fn scratch_is_per_worker() {
        let pool = ThreadPool::new(4);
        let mut scratch = vec![Vec::<usize>::new(); pool.threads()];
        let mut jobs = vec![0u8; 100];
        pool.for_each_mut_with(&mut scratch, &mut jobs, |s, i, _| s.push(i));
        let mut seen: Vec<usize> = scratch.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert!(pool.is_serial());
        let out = pool.map_indexed(&[1, 2, 3], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }
}
