//! Unit suite for the scoped thread pool: panic propagation, empty
//! input, nested use, determinism under contention, and survival across
//! a panicked batch.

use gbu_par::ThreadPool;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
#[should_panic(expected = "boom at 37")]
fn worker_panic_propagates_to_the_caller() {
    let pool = ThreadPool::new(4);
    let items = vec![0u32; 200];
    let _ = pool.map_indexed(&items, |i, _| {
        if i == 37 {
            panic!("boom at 37");
        }
        i
    });
}

#[test]
fn pool_survives_a_panicked_batch() {
    let pool = ThreadPool::new(4);
    let items = vec![1u64; 100];
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.map_indexed(&items, |i, &x| {
            if i % 10 == 3 {
                panic!("flaky job");
            }
            x
        })
    }));
    assert!(result.is_err(), "the panic must reach the caller");
    // The pool is still functional afterwards.
    let out = pool.map_indexed(&items, |i, &x| x + i as u64);
    assert_eq!(out.len(), 100);
    assert_eq!(out[99], 100);
}

#[test]
fn empty_inputs_touch_nothing() {
    let pool = ThreadPool::new(4);
    assert!(pool.map_indexed(&[] as &[u8], |_, &b| b).is_empty());
    pool.for_each_mut(&mut [] as &mut [u8], |_, _| panic!("no jobs, no calls"));
    let mut scratch = [0u8; 2];
    pool.for_each_mut_with(&mut scratch, &mut [] as &mut [u8], |_, _, _| {
        panic!("no jobs, no calls")
    });
}

#[test]
fn nested_use_runs_inline_and_stays_correct() {
    let pool = ThreadPool::new(4);
    let outer: Vec<u64> = (0..8).collect();
    let sums = pool.map_indexed(&outer, |_, &base| {
        // Re-entering the pool from a worker must not deadlock; the
        // inner region runs inline and produces the same results.
        let inner: Vec<u64> = (0..100).collect();
        pool.map_indexed(&inner, |_, &x| x + base).iter().sum::<u64>()
    });
    for (i, &s) in sums.iter().enumerate() {
        assert_eq!(s, 4950 + 100 * i as u64);
    }
}

#[test]
fn outputs_are_index_stable_across_thread_counts() {
    let items: Vec<u64> = (0..500).map(|i| i * 7 + 1).collect();
    let reference: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * x + i as u64).collect();
    for threads in [1, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        let out = pool.map_indexed(&items, |i, &x| x * x + i as u64);
        assert_eq!(out, reference, "threads={threads}");
    }
}

#[test]
fn many_small_batches_are_cheap_and_exact() {
    // The DevicePool-advance shape: thousands of tiny parallel regions.
    let pool = ThreadPool::new(4);
    let mut jobs = vec![0u64; 4];
    for _ in 0..5_000 {
        pool.for_each_mut(&mut jobs, |_, j| *j += 1);
    }
    assert_eq!(jobs, vec![5_000u64; 4]);
}

#[test]
fn scratch_states_never_shared_within_a_batch() {
    let pool = ThreadPool::new(8);
    let mut scratch = vec![0usize; pool.threads()];
    let mut jobs = vec![(); 10_000];
    pool.for_each_mut_with(&mut scratch, &mut jobs, |s, _, ()| *s += 1);
    // Every job was counted exactly once across the per-worker tallies.
    assert_eq!(scratch.iter().sum::<usize>(), 10_000);
}
