//! The integrated edge system: Orin-NX-class GPU + GBU.
//!
//! Implements the workload assignment and two-level pipeline of Sec. V-E:
//! Rendering Steps ❶/❷ stay on the GPU (keeping application-specific
//! preprocessing programmable), Step ❸ runs on the GBU, and the frame-
//! level pipeline overlaps the GPU's Steps ❶/❷ for frame *n+1* with the
//! GBU's Step ❸ for frame *n* through a double buffer in DRAM. At steady
//! state the frame time is the pipeline's slowest stage — including the
//! shared-DRAM bandwidth "stage", which is how the Gaussian Reuse Cache's
//! traffic reduction turns into the paper's 1.14× end-to-end speedup.
//!
//! The five [`Design`] points reproduce Tab. V's ablation ladder.

use gbu_gpu::{power, timing, FrameWorkload, GpuConfig, Step3Mapping};
use gbu_hw::area::GbuAreaModel;
use gbu_hw::GbuConfig;

/// FLOPs per Gaussian the GPU must additionally spend in Step ❶ when the
/// D&B engine is absent: eigendecomposition, the two-step transform
/// parameters and the Gaussian-tile intersection tests (offloaded to the
/// GBU by the "+GBU D&B Engine" ablation step).
pub const TRANSFORM_FLOPS_ON_GPU: f64 = 130.0;

/// An ablation design point (the rows of Tab. V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// Baseline: the reference PFS rasteriser on the GPU alone.
    GpuPfs,
    /// The IRSS dataflow as a customised CUDA kernel (Sec. IV-D).
    GpuIrss,
    /// GBU with only the Row-Centric Tile Engine (transforms and binning
    /// still on the GPU; no reuse cache).
    GbuTileEngine,
    /// Plus the Decomposition & Binning engine (chunk-pipelined with the
    /// Tile PE; GPU Step ❶ lightened).
    GbuWithDnb,
    /// Plus the Gaussian Reuse Cache — the full system.
    GbuFull,
}

impl Design {
    /// All designs in the ablation ladder's order.
    pub fn ladder() -> [Design; 5] {
        [
            Design::GpuPfs,
            Design::GpuIrss,
            Design::GbuTileEngine,
            Design::GbuWithDnb,
            Design::GbuFull,
        ]
    }

    /// Row label matching Tab. V.
    pub fn label(self) -> &'static str {
        match self {
            Design::GpuPfs => "Jetson Orin NX",
            Design::GpuIrss => "+ IRSS Dataflow",
            Design::GbuTileEngine => "+ GBU Tile Engine",
            Design::GbuWithDnb => "+ GBU D&B Engine",
            Design::GbuFull => "+ GBU Reuse Cache",
        }
    }

    /// Whether this design uses the GBU hardware.
    pub fn uses_gbu(self) -> bool {
        !matches!(self, Design::GpuPfs | Design::GpuIrss)
    }
}

/// System under evaluation.
#[derive(Debug, Clone, Default)]
pub struct SystemConfig {
    /// The edge GPU.
    pub gpu: GpuConfig,
    /// The GBU.
    pub gbu: GbuConfig,
}

/// One frame's measured (and scale-extrapolated) inputs to the system
/// model. Produced by [`crate::apps::measure_frame`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrameMeasurement {
    /// Event counts (already extrapolated to the reporting scale).
    pub workload: FrameWorkload,
    /// Tile-engine cycles at the reporting scale.
    pub gbu_tile_cycles: f64,
    /// Row-PE utilization measured on the tile engine (scale-invariant).
    pub gbu_pe_utilization: f64,
    /// Gaussian Reuse Cache hit rate measured on the frame.
    pub cache_hit_rate: f64,
    /// SH degree of the scene's color model (Step ❶ cost).
    pub sh_degree: u8,
    /// Application-specific extra Step-❶ FLOPs per Gaussian (4D slicing
    /// for dynamic scenes, LBS skinning for avatars — Sec. II-C).
    pub step1_extra_flops: f64,
}

/// Evaluation of one design on one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemEvaluation {
    /// The design evaluated.
    pub design: Design,
    /// Steady-state frame time in seconds.
    pub frame_seconds: f64,
    /// Steady-state frames per second.
    pub fps: f64,
    /// GPU Step ❶ time (s).
    pub step1: f64,
    /// GPU Step ❷ time (s).
    pub step2: f64,
    /// Step ❸ time (s) — on the GPU or the GBU depending on the design.
    pub step3: f64,
    /// Utilization of the compute resource executing Step ❸.
    pub step3_utilization: f64,
    /// DRAM bytes for Step ❸ feature traffic per frame.
    pub step3_dram_bytes: f64,
    /// Energy per frame in joules.
    pub energy_j: f64,
}

impl SystemEvaluation {
    /// Per-step shares of the (unpipelined) step times — the Fig. 5
    /// breakdown. For GBU designs the steps overlap, so shares describe
    /// work distribution rather than wall-clock.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let t = self.step1 + self.step2 + self.step3;
        (self.step1 / t, self.step2 / t, self.step3 / t)
    }
}

/// Evaluates a design on a measured frame.
pub fn evaluate(cfg: &SystemConfig, m: &FrameMeasurement, design: Design) -> SystemEvaluation {
    match design {
        Design::GpuPfs => evaluate_gpu(cfg, m, Step3Mapping::Pfs, design),
        Design::GpuIrss => evaluate_gpu(cfg, m, Step3Mapping::IrssGpu, design),
        _ => evaluate_gbu(cfg, m, design),
    }
}

/// Evaluates every design of the ablation ladder.
pub fn evaluate_ladder(cfg: &SystemConfig, m: &FrameMeasurement) -> Vec<SystemEvaluation> {
    Design::ladder().into_iter().map(|d| evaluate(cfg, m, d)).collect()
}

fn step1_extra_seconds(cfg: &SystemConfig, m: &FrameMeasurement) -> f64 {
    m.workload.gaussians * m.step1_extra_flops / (cfg.gpu.peak_flops() * cfg.gpu.efficiency_step1)
}

fn evaluate_gpu(
    cfg: &SystemConfig,
    m: &FrameMeasurement,
    mapping: Step3Mapping,
    design: Design,
) -> SystemEvaluation {
    let mut t = timing::frame_time(&m.workload, &cfg.gpu, mapping, m.sh_degree);
    t.step1 += step1_extra_seconds(cfg, m);
    let e = power::frame_energy(&cfg.gpu, &t);
    SystemEvaluation {
        design,
        frame_seconds: t.total(),
        fps: t.fps(),
        step1: t.step1,
        step2: t.step2,
        step3: t.step3,
        step3_utilization: t.step3_utilization,
        step3_dram_bytes: t.step3_bytes,
        energy_j: e.total(),
    }
}

fn evaluate_gbu(cfg: &SystemConfig, m: &FrameMeasurement, design: Design) -> SystemEvaluation {
    let gpu = &cfg.gpu;
    let gbu = &cfg.gbu;
    let w = &m.workload;

    let has_dnb = matches!(design, Design::GbuWithDnb | Design::GbuFull);

    // --- GPU side (Steps 1-2, next frame, overlapped). ---
    // Any GBU integration consumes Gaussians in global depth order and
    // bins them tile-by-tile on chip, so the GPU's Step ❷ is always the
    // cheap depth-only sort over visible splats rather than the
    // instance-duplication radix sort of the software rasteriser.
    let mut step1 = timing::step1_time(w, gpu, m.sh_degree) + step1_extra_seconds(cfg, m);
    let mut list_bytes = 0.0;
    if !has_dnb {
        // Without the D&B engine the GPU also computes the IRSS transform
        // parameters and the Gaussian-tile intersection tests, and streams
        // the resulting per-tile work lists (24 B per instance) to DRAM
        // for the tile engine to consume.
        step1 += w.splats * TRANSFORM_FLOPS_ON_GPU / (gpu.peak_flops() * gpu.efficiency_step1);
        list_bytes = w.instances * 24.0;
    }
    let depth_sort_bytes = w.splats * gpu.depth_sort_bytes_per_splat_pass * gpu.depth_sort_passes;
    let step2 = depth_sort_bytes / (gpu.dram_bytes_per_s() * gpu.efficiency_step2_bw);
    let t_gpu = step1 + step2;

    // --- GBU side (Step 3, current frame). ---
    let tile_s = m.gbu_tile_cycles / (gbu.clock_ghz * 1e9);
    let dnb_cycles =
        w.splats * gbu.dnb_evd_cycles as f64 + w.instances * gbu.dnb_intersect_cycles as f64;
    let dnb_s = dnb_cycles / (gbu.clock_ghz * 1e9);
    let t_gbu = if has_dnb {
        // Chunk-level pipeline: D&B overlaps the Tile PE.
        tile_s.max(dnb_s)
    } else {
        tile_s
    };

    // --- Step-3 feature traffic. ---
    let nocache_bytes = w.instances * gbu.bytes_per_miss as f64;
    let gbu_bytes = if design == Design::GbuFull {
        nocache_bytes * (1.0 - m.cache_hit_rate)
    } else {
        nocache_bytes
    };

    // --- Shared-DRAM contention (Limitation 2). ---
    // During the overlapped window the GPU's Step-1/2 streams and the
    // GBU's feature fetches share LPDDR bandwidth.
    let gpu_bytes = w.gaussians * gpu.step1_bytes_per_gaussian + depth_sort_bytes + list_bytes;
    // Two concurrent streams (GPU sequential kernels + GBU scattered
    // gathers) achieve roughly half the peak LPDDR bandwidth.
    let t_mem = (gpu_bytes + gbu_bytes) / (gpu.dram_bytes_per_s() * 0.50);

    let frame = t_gpu.max(t_gbu).max(t_mem);

    // --- Energy. ---
    // GPU: busy for its steps at high occupancy, idles the rest of the
    // frame. GBU: its synthesised typical power while active.
    let gbu_power = GbuAreaModel::paper().total_power_w();
    let e_gpu = t_gpu * power::power_at(gpu, 0.8) + (frame - t_gpu).max(0.0) * gpu.idle_power_w;
    let e_gbu = t_gbu * gbu_power;
    SystemEvaluation {
        design,
        frame_seconds: frame,
        fps: 1.0 / frame,
        step1,
        step2,
        step3: t_gbu,
        step3_utilization: m.gbu_pe_utilization,
        step3_dram_bytes: gbu_bytes,
        energy_j: e_gpu + e_gbu,
    }
}

/// Test-support fixtures shared with the pipeline module's tests.
#[cfg(test)]
pub(crate) mod tests_support {
    pub(crate) use super::tests::paper_measurement;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A paper-scale static-scene measurement mirroring what
    /// `apps::measure_frame` produces for the "counter" scene after
    /// extrapolation (the calibration anchor; see EXPERIMENTS.md).
    pub(crate) fn paper_measurement() -> FrameMeasurement {
        let visible = 1.13e6;
        let instances = 3.13e6;
        let fragments_pfs = visible * 554.0;
        let fragments_irss = fragments_pfs * 0.19;
        let utilization = 0.40;
        FrameMeasurement {
            workload: FrameWorkload {
                gaussians: 1.25e6,
                splats: visible,
                instances,
                sort_passes: 6.0,
                fragments_pfs,
                fragments_blended: fragments_pfs * 0.12,
                fragments_irss,
                rows_irss: instances * 15.9,
                instance_row_max_sum: fragments_irss / (16.0 * utilization),
                irss_lane_utilization: utilization,
                pixels: 7.2e5,
            },
            gbu_tile_cycles: 1.21e7,
            gbu_pe_utilization: 0.72,
            cache_hit_rate: 0.59,
            sh_degree: 1,
            step1_extra_flops: 0.0,
        }
    }

    #[test]
    fn ladder_is_monotonically_faster() {
        let cfg = SystemConfig::default();
        let m = paper_measurement();
        let evals = evaluate_ladder(&cfg, &m);
        for pair in evals.windows(2) {
            assert!(
                pair[1].fps >= pair[0].fps * 0.999,
                "{} ({:.1} FPS) should not be slower than {} ({:.1} FPS)",
                pair[1].design.label(),
                pair[1].fps,
                pair[0].design.label(),
                pair[0].fps
            );
        }
    }

    #[test]
    fn full_system_reaches_realtime_baseline_does_not() {
        let cfg = SystemConfig::default();
        let m = paper_measurement();
        let base = evaluate(&cfg, &m, Design::GpuPfs);
        let full = evaluate(&cfg, &m, Design::GbuFull);
        assert!(base.fps < 25.0, "baseline {base:?}");
        assert!(full.fps >= 60.0, "full system must be real-time, got {:.1}", full.fps);
    }

    #[test]
    fn ablation_factors_are_in_papers_ballpark() {
        // Tab. V: 12.8 -> 22.0 -> 66.1 -> 80.6 -> 91.5 FPS. Accept wide
        // bands around each *ratio* (the shape, not the absolute point).
        let cfg = SystemConfig::default();
        let m = paper_measurement();
        let e = evaluate_ladder(&cfg, &m);
        let r_irss = e[1].fps / e[0].fps; // paper 1.72
        let r_tile = e[2].fps / e[1].fps; // paper 3.0
        let r_dnb = e[3].fps / e[2].fps; // paper 1.22
        let r_cache = e[4].fps / e[3].fps; // paper 1.14
        assert!((1.3..2.6).contains(&r_irss), "IRSS ratio {r_irss}");
        assert!((1.8..5.0).contains(&r_tile), "tile-engine ratio {r_tile}");
        assert!((1.0..1.6).contains(&r_dnb), "D&B ratio {r_dnb}");
        assert!((1.0..1.5).contains(&r_cache), "cache ratio {r_cache}");
    }

    #[test]
    fn cache_cuts_step3_traffic() {
        let cfg = SystemConfig::default();
        let m = paper_measurement();
        let no_cache = evaluate(&cfg, &m, Design::GbuWithDnb);
        let cache = evaluate(&cfg, &m, Design::GbuFull);
        let reduction = 1.0 - cache.step3_dram_bytes / no_cache.step3_dram_bytes;
        assert!((reduction - m.cache_hit_rate).abs() < 1e-9);
    }

    #[test]
    fn gbu_energy_is_far_lower() {
        let cfg = SystemConfig::default();
        let m = paper_measurement();
        let base = evaluate(&cfg, &m, Design::GpuPfs);
        let full = evaluate(&cfg, &m, Design::GbuFull);
        let improvement = (base.energy_j / base.fps.recip()) / (full.energy_j / full.fps.recip());
        let _ = improvement;
        let ratio = base.energy_j / full.energy_j;
        // Paper: 10.8x on static scenes. Accept a generous band.
        assert!(ratio > 4.0, "energy-efficiency ratio {ratio}");
    }

    #[test]
    fn breakdown_sums_to_one() {
        let cfg = SystemConfig::default();
        let m = paper_measurement();
        for e in evaluate_ladder(&cfg, &m) {
            let (a, b, c) = e.breakdown();
            assert!((a + b + c - 1.0).abs() < 1e-9, "{:?}", e.design);
        }
    }

    #[test]
    fn dnb_offload_lightens_gpu_step1() {
        let cfg = SystemConfig::default();
        let m = paper_measurement();
        let tile_only = evaluate(&cfg, &m, Design::GbuTileEngine);
        let with_dnb = evaluate(&cfg, &m, Design::GbuWithDnb);
        assert!(with_dnb.step1 < tile_only.step1);
    }
}
