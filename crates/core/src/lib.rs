//! Public GBU API: device interface, GPU+GBU system co-simulation,
//! application pipelines and ablation designs.
//!
//! This crate is the top of the stack — what a downstream user of the
//! reproduction interacts with:
//!
//! - [`device`]: the [`Gbu`] device object exposing the
//!   paper's programming model (Listing 1: `GBU_render_image` /
//!   `GBU_check_status`) over the hardware simulator;
//! - [`system`]: the integrated edge system — an Orin-NX-class GPU with
//!   the GBU attached — including the frame-level GPU∥GBU pipeline and the
//!   chunk-level D&B∥Tile-PE pipeline of Fig. 13, DRAM bandwidth
//!   contention, and the ablation designs of Tab. V;
//! - [`apps`]: the three AR/VR application pipelines (static scenes,
//!   dynamic scenes, avatars) mapped onto the system;
//! - [`reports`]: plain-text table formatting used by the `repro` harness.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod device;
pub mod pipeline;
pub mod reports;
pub mod system;

pub use device::Gbu;
pub use system::{Design, SystemConfig, SystemEvaluation};
