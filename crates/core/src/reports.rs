//! Plain-text table formatting for the `repro` harness.

/// Formats a table with aligned columns.
///
/// # Example
///
/// ```
/// let t = gbu_core::reports::table(
///     &["Scene", "FPS"],
///     &[vec!["bicycle".into(), "12.8".into()], vec!["bonsai".into(), "17.1".into()]],
/// );
/// assert!(t.contains("bicycle"));
/// assert!(t.lines().count() >= 4);
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('|');
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with engineering-friendly precision.
pub fn fmt_f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Renders a simple horizontal bar chart line (for figure-style output).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["A", "LongHeader"],
            &[vec!["xx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("LongHeader"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        let _ = table(&["A", "B"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(3.24159, 2), "3.24");
        assert_eq!(fmt_x(1.715), "1.72x");
        assert_eq!(fmt_pct(0.189), "18.9%");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########"); // clamped
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
