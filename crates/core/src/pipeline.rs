//! Multi-frame simulation of the two-level pipeline (Fig. 13).
//!
//! The steady-state analysis in [`crate::system`] computes the pipelined
//! frame time as the slowest stage; this module *simulates* the pipeline
//! frame by frame — GPU Steps ❶/❷ for frame *n+1* overlapping the GBU's
//! Step ❸ for frame *n* through the pre-allocated DRAM double buffer —
//! including the fill behaviour of the first frames and per-frame
//! workload variation (dynamic scenes and avatars change every frame).
//! Tests assert that the simulated steady state converges to the
//! analytical model.

use crate::system::{self, Design, FrameMeasurement, SystemConfig};

/// Timeline of one frame through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameTimeline {
    /// Frame index.
    pub index: usize,
    /// When the GPU starts Steps ❶/❷ for this frame.
    pub gpu_start: f64,
    /// When the GPU finishes Steps ❶/❷ (the splat buffer is ready).
    pub gpu_end: f64,
    /// When the GBU starts Step ❸.
    pub gbu_start: f64,
    /// When the frame completes (GBU finishes blending).
    pub gbu_end: f64,
}

/// Result of a multi-frame pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Per-frame timelines.
    pub frames: Vec<FrameTimeline>,
    /// Steady-state frame interval (seconds/frame over the last half of
    /// the run).
    pub steady_interval: f64,
}

impl PipelineRun {
    /// Steady-state throughput in frames per second.
    pub fn steady_fps(&self) -> f64 {
        1.0 / self.steady_interval
    }

    /// End-to-end latency of frame `i` (GPU start to GBU end).
    pub fn latency(&self, i: usize) -> f64 {
        self.frames[i].gbu_end - self.frames[i].gpu_start
    }
}

/// Simulates `measurements.len()` frames through the GPU∥GBU pipeline
/// under the given design.
///
/// The double buffer holds one prepared frame: the GPU may run at most
/// one frame ahead of the GBU. Memory-bandwidth contention stretches
/// whichever stage overlaps (the conservative treatment matching the
/// steady-state model).
///
/// # Panics
///
/// Panics if `measurements` is empty or the design does not use the GBU
/// (GPU-only designs have no pipeline to simulate).
pub fn simulate(
    cfg: &SystemConfig,
    measurements: &[FrameMeasurement],
    design: Design,
) -> PipelineRun {
    assert!(!measurements.is_empty(), "no frames to simulate");
    assert!(design.uses_gbu(), "pipeline simulation requires a GBU design");

    let mut frames = Vec::with_capacity(measurements.len());
    let mut gpu_free = 0.0f64;
    let mut gbu_free = 0.0f64;
    // Completion time of the frame occupying the double buffer's "ready"
    // slot; the GPU may not finish preparing frame n+1 before the GBU
    // has *started* consuming frame n (slot reuse).
    let mut prev_gbu_start = 0.0f64;

    for (index, m) in measurements.iter().enumerate() {
        let e = system::evaluate(cfg, m, design);
        // The per-frame stage times under contention: the evaluation's
        // frame_seconds is max(gpu, gbu, mem); apportion the memory
        // stretch to both stages conservatively.
        let stretch = (e.frame_seconds / (e.step1 + e.step2).max(e.step3)).max(1.0);
        let t_gpu = (e.step1 + e.step2) * stretch;
        let t_gbu = e.step3 * stretch;

        let gpu_start = gpu_free.max(if index == 0 { 0.0 } else { prev_gbu_start });
        let gpu_end = gpu_start + t_gpu;
        let gbu_start = gpu_end.max(gbu_free);
        let gbu_end = gbu_start + t_gbu;
        prev_gbu_start = gbu_start;
        gpu_free = gpu_end;
        gbu_free = gbu_end;
        frames.push(FrameTimeline { index, gpu_start, gpu_end, gbu_start, gbu_end });
    }

    let half = frames.len() / 2;
    let steady_interval = if frames.len() >= 2 {
        let a = &frames[half.max(1) - 1];
        let b = frames.last().expect("non-empty");
        ((b.gbu_end - a.gbu_end) / (b.index - a.index) as f64).max(1e-12)
    } else {
        frames[0].gbu_end
    };
    PipelineRun { frames, steady_interval }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests_support::paper_measurement;

    fn config() -> SystemConfig {
        SystemConfig::default()
    }

    #[test]
    fn frames_are_causally_ordered() {
        let m = vec![paper_measurement(); 8];
        let run = simulate(&config(), &m, Design::GbuFull);
        for f in &run.frames {
            assert!(f.gpu_end >= f.gpu_start);
            assert!(f.gbu_start >= f.gpu_end, "GBU cannot start before its inputs exist");
            assert!(f.gbu_end >= f.gbu_start);
        }
        // Frames complete in order.
        for w in run.frames.windows(2) {
            assert!(w[1].gbu_end >= w[0].gbu_end);
        }
    }

    #[test]
    fn pipeline_overlaps_gpu_and_gbu() {
        let m = vec![paper_measurement(); 8];
        let run = simulate(&config(), &m, Design::GbuFull);
        // After the fill, frame n+1's GPU work starts before frame n's
        // GBU work finishes — that is the Fig. 13 overlap.
        let f2 = &run.frames[2];
        let f3 = &run.frames[3];
        assert!(
            f3.gpu_start < f2.gbu_end,
            "no overlap: frame 3 GPU at {:.4}, frame 2 GBU end {:.4}",
            f3.gpu_start,
            f2.gbu_end
        );
    }

    #[test]
    fn steady_state_matches_analytical_model() {
        let m = vec![paper_measurement(); 24];
        let run = simulate(&config(), &m, Design::GbuFull);
        let analytical = system::evaluate(&config(), &m[0], Design::GbuFull);
        let ratio = run.steady_fps() / analytical.fps;
        assert!(
            (0.85..1.15).contains(&ratio),
            "simulated {:.1} FPS vs analytical {:.1} FPS",
            run.steady_fps(),
            analytical.fps
        );
    }

    #[test]
    fn pipelining_beats_serial_execution() {
        let m = vec![paper_measurement(); 16];
        let run = simulate(&config(), &m, Design::GbuFull);
        let e = system::evaluate(&config(), &m[0], Design::GbuFull);
        let serial = e.step1 + e.step2 + e.step3;
        assert!(
            run.steady_interval < serial,
            "pipelined {:.4}s/frame should beat serial {serial:.4}s/frame",
            run.steady_interval
        );
    }

    #[test]
    fn latency_exceeds_interval() {
        let m = vec![paper_measurement(); 8];
        let run = simulate(&config(), &m, Design::GbuFull);
        // Per-frame latency spans both stages; throughput interval is the
        // max of them — classic pipeline property.
        assert!(run.latency(5) >= run.steady_interval * 0.99);
    }

    #[test]
    #[should_panic(expected = "requires a GBU design")]
    fn gpu_only_design_panics() {
        let m = vec![paper_measurement()];
        let _ = simulate(&config(), &m, Design::GpuPfs);
    }
}
