//! Application pipelines: static scenes, dynamic scenes and avatars on
//! the integrated system.
//!
//! Per Sec. II-D, the three AR/VR application types share Rendering Steps
//! ❷/❸ and differ only in Step ❶ (time-conditioning for 4D Gaussians,
//! LBS skinning for avatars). [`FrameScenario::from_dataset`] performs the
//! application-specific Step-❶ geometry work and hands a plain Gaussian
//! scene to the shared pipeline; [`measure_frame`] runs the functional
//! renderers and the GBU hardware model over it and assembles the
//! [`FrameMeasurement`] the system model consumes.

use crate::system::FrameMeasurement;
use gbu_gpu::{FrameWorkload, WorkloadScale};
use gbu_hw::cache::Policy;
use gbu_hw::{dnb, GbuConfig, GbuRunResult, TileEngine};
use gbu_math::Vec3;
use gbu_render::{
    binning, metrics, preprocess, render_pfs, FrameBuffer, RenderConfig, RenderOutput,
};
use gbu_scene::avatar::Pose;
use gbu_scene::{Camera, DatasetScene, GaussianScene, ScaleProfile, SceneKind};

/// A concrete frame to render: the Step-❶-resolved scene plus a camera.
#[derive(Debug, Clone)]
pub struct FrameScenario {
    /// The (posed / time-sampled) 3D Gaussian scene.
    pub scene: GaussianScene,
    /// The evaluation camera.
    pub camera: Camera,
    /// SH degree used by the scene's color model.
    pub sh_degree: u8,
    /// Application-specific extra Step-❶ FLOPs per Gaussian (0 for
    /// static scenes; 4D conditioning for dynamic; LBS for avatars).
    pub step1_extra_flops: f64,
}

impl FrameScenario {
    /// Builds the evaluation frame for a dataset scene: dynamic scenes are
    /// sampled mid-sequence, avatars are posed mid-stride.
    pub fn from_dataset(ds: &DatasetScene, profile: ScaleProfile) -> Self {
        let camera = ds.camera(profile);
        let scene = match ds.kind {
            SceneKind::Static => ds.build_static(profile),
            SceneKind::Dynamic => ds.build_dynamic(profile).sample(0.4, 1.0 / 255.0),
            SceneKind::Avatar => {
                let avatar = ds.build_avatar(profile);
                let pose = Pose::walk_cycle(&avatar.skeleton, 1.2);
                avatar.pose(&pose)
            }
        };
        // Application-specific Step-1 cost per Gaussian, charged by the
        // timing model only (the functional substitute is much simpler
        // than the papers' deformation pipelines). Calibrated to Fig. 5's
        // per-stage breakdown: 4DGS's temporal slicing / HexPlane features
        // and SplattingAvatar's mesh-embedded skinning dominate Step 1 on
        // those applications.
        let step1_extra_flops = match ds.kind {
            SceneKind::Static => 0.0,
            SceneKind::Dynamic => 11_000.0,
            SceneKind::Avatar => 30_000.0,
        };
        Self { scene, camera, sh_degree: ds.synth_params().sh_degree, step1_extra_flops }
    }

    /// Workload extrapolation from this frame to the paper's scale
    /// (checkpoint Gaussian count × full resolution).
    pub fn paper_scale(&self, ds: &DatasetScene) -> WorkloadScale {
        let paper_px = f64::from(ds.width) * f64::from(ds.height);
        let rendered_px = f64::from(self.camera.width) * f64::from(self.camera.height);
        WorkloadScale::new(
            self.scene.len() as f64,
            f64::from(ds.paper_gaussians_k) * 1000.0,
            rendered_px,
            paper_px,
        )
    }
}

/// Everything measured on one frame.
#[derive(Debug, Clone)]
pub struct MeasuredFrame {
    /// System-model inputs at the reporting scale.
    pub measurement: FrameMeasurement,
    /// Unscaled workload (as rendered).
    pub raw_workload: FrameWorkload,
    /// Reference PFS pipeline output.
    pub pfs: RenderOutput,
    /// IRSS pipeline output.
    pub irss: RenderOutput,
    /// GBU hardware run (FP-16 datapath, reuse cache enabled).
    pub gbu: GbuRunResult,
}

/// Runs the full measurement stack on a frame.
pub fn measure_frame(
    scenario: &FrameScenario,
    gbu_cfg: &GbuConfig,
    scale: WorkloadScale,
) -> MeasuredFrame {
    let cfg_pfs = RenderConfig::default();
    let cfg_irss = RenderConfig { record_row_workload: true, ..RenderConfig::default() };

    let (splats, pre) = preprocess::project_scene(&scenario.scene, &scenario.camera);
    let (bins, bin_stats) = binning::bin_splats(&splats, &scenario.camera, cfg_pfs.tile_size);

    // The D&B pass runs first so the software IRSS blend can reuse its
    // transforms (one EVD per splat, not two); both blends and the tile
    // engine dispatch tile rows over the global `gbu_par` pool.
    let d = dnb::run(&splats, &bins, gbu_cfg);
    let (pfs_img, pfs_stats) = gbu_render::pfs::blend(&splats, &bins, &scenario.camera, &cfg_pfs);
    let (irss_img, irss_stats) = gbu_render::irss::blend_precomputed(
        &splats,
        &d.transforms,
        &bins,
        &scenario.camera,
        &cfg_irss,
    );

    let engine = TileEngine::new(gbu_cfg.clone());
    let gbu = engine.render(
        &splats,
        &d,
        &bins,
        &scenario.camera,
        cfg_pfs.background,
        Policy::ReuseDistance,
    );

    let pixels = u64::from(scenario.camera.width) * u64::from(scenario.camera.height);
    let raw = FrameWorkload::from_stats(&pre, &bin_stats, &pfs_stats, &irss_stats, pixels);
    let scaled = raw.scaled(scale);
    // Tile-engine cycles are instance/fragment-proportional, so they
    // extrapolate with the Gaussian ratio (see FrameWorkload::scaled).
    let cycle_scale = scale.gaussians;

    let measurement = FrameMeasurement {
        workload: scaled,
        gbu_tile_cycles: gbu.compute_cycles as f64 * cycle_scale,
        gbu_pe_utilization: gbu.pe_utilization(gbu_cfg),
        cache_hit_rate: gbu.cache.hit_rate(),
        sh_degree: scenario.sh_degree,
        step1_extra_flops: scenario.step1_extra_flops,
    };

    MeasuredFrame {
        measurement,
        raw_workload: raw,
        pfs: RenderOutput {
            image: pfs_img,
            preprocess: pre.clone(),
            binning: bin_stats.clone(),
            blend: pfs_stats,
        },
        irss: RenderOutput {
            image: irss_img,
            preprocess: pre,
            binning: bin_stats,
            blend: irss_stats,
        },
        gbu,
    }
}

/// Quality metrics of one renderer against a reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Peak signal-to-noise ratio (dB).
    pub psnr: f64,
    /// Structural similarity.
    pub ssim: f64,
    /// LPIPS-proxy (gradient-structure distance; see
    /// `gbu_render::metrics::lpips_proxy`).
    pub lpips_proxy: f64,
}

/// Computes the quality report of `image` against `reference`.
pub fn quality(reference: &FrameBuffer, image: &FrameBuffer) -> QualityReport {
    QualityReport {
        psnr: metrics::psnr(reference, image),
        ssim: metrics::ssim(reference, image),
        lpips_proxy: metrics::lpips_proxy(reference, image),
    }
}

/// Renders a pseudo ground truth for Tab. IV-style absolute quality rows:
/// the reference PFS pipeline at 2× resolution, box-downsampled. The
/// anti-aliased reference penalises both FP32 and FP16 renderers by a
/// finite amount so that quality *deltas* (the paper's actual claim:
/// <0.1 dB loss from FP16) are measurable. The paper's absolute PSNR is
/// against held-out photographs, which require the original captures.
pub fn pseudo_ground_truth(scenario: &FrameScenario) -> FrameBuffer {
    let hi_cam = scenario.camera.scaled(2.0);
    let hi = render_pfs(&scenario.scene, &hi_cam, &RenderConfig::default());
    downsample2x(&hi.image)
}

/// 2×2 box downsample.
pub fn downsample2x(src: &FrameBuffer) -> FrameBuffer {
    let w = src.width() / 2;
    let h = src.height() / 2;
    let mut out = FrameBuffer::new(w, h, Vec3::ZERO);
    for y in 0..h {
        for x in 0..w {
            let s = src.get(2 * x, 2 * y)
                + src.get(2 * x + 1, 2 * y)
                + src.get(2 * x, 2 * y + 1)
                + src.get(2 * x + 1, 2 * y + 1);
            out.set(x, y, s / 4.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbu_scene::DatasetScene;

    #[test]
    fn scenarios_build_for_all_kinds() {
        for name in ["bonsai", "flame_steak", "male-3"] {
            let ds = DatasetScene::by_name(name).unwrap();
            let s = FrameScenario::from_dataset(&ds, ScaleProfile::Test);
            assert!(!s.scene.is_empty(), "{name}");
            assert!(s.camera.width > 0);
        }
    }

    #[test]
    fn paper_scale_is_above_one_for_test_profile() {
        let ds = DatasetScene::by_name("bicycle").unwrap();
        let s = FrameScenario::from_dataset(&ds, ScaleProfile::Test);
        let scale = s.paper_scale(&ds);
        assert!(scale.gaussians > 100.0, "checkpoint is millions vs test thousands");
        assert!(scale.pixels > 10.0, "full res vs quarter res");
    }

    #[test]
    fn measure_frame_is_consistent() {
        let ds = DatasetScene::by_name("bonsai").unwrap();
        let s = FrameScenario::from_dataset(&ds, ScaleProfile::Test);
        let m = measure_frame(&s, &GbuConfig::paper(), WorkloadScale::IDENTITY);
        // PFS and IRSS render the same image.
        let diff = m.pfs.image.max_abs_diff(&m.irss.image);
        assert!(diff < 1e-2, "PFS vs IRSS diff {diff}");
        // The GBU processed the same instance stream.
        assert_eq!(
            m.gbu.instances,
            m.irss.blend.instances + m.irss.blend.instances_skipped_saturated
        );
        // Scaled == raw under identity scale.
        assert_eq!(m.measurement.workload, m.raw_workload);
        assert!(m.measurement.gbu_pe_utilization > 0.0);
    }

    #[test]
    fn gbu_fp16_image_is_close_to_reference() {
        let ds = DatasetScene::by_name("bonsai").unwrap();
        let s = FrameScenario::from_dataset(&ds, ScaleProfile::Test);
        let m = measure_frame(&s, &GbuConfig::paper(), WorkloadScale::IDENTITY);
        let q = quality(&m.pfs.image, &m.gbu.image);
        assert!(q.psnr > 35.0, "FP16 GBU vs FP32 PFS: {} dB", q.psnr);
        assert!(q.ssim > 0.95);
    }

    #[test]
    fn pseudo_gt_has_frame_dimensions() {
        let ds = DatasetScene::by_name("bonsai").unwrap();
        let s = FrameScenario::from_dataset(&ds, ScaleProfile::Test);
        let gt = pseudo_ground_truth(&s);
        assert_eq!(gt.width(), s.camera.width);
        assert_eq!(gt.height(), s.camera.height);
        // Both renderers land at finite PSNR against the AA reference.
        let m = measure_frame(&s, &GbuConfig::paper(), WorkloadScale::IDENTITY);
        let q32 = quality(&gt, &m.pfs.image);
        let q16 = quality(&gt, &m.gbu.image);
        assert!(q32.psnr.is_finite() && q32.psnr > 20.0, "fp32 {}", q32.psnr);
        // FP16 loses little against the same reference (Tab. IV's claim).
        assert!((q32.psnr - q16.psnr).abs() < 1.0, "fp16 delta {}", q32.psnr - q16.psnr);
    }

    #[test]
    fn downsample_averages() {
        let mut src = FrameBuffer::new(4, 2, Vec3::ZERO);
        src.set(0, 0, Vec3::ONE);
        src.set(1, 1, Vec3::ONE);
        let d = downsample2x(&src);
        assert_eq!(d.width(), 2);
        assert_eq!(d.get(0, 0), Vec3::splat(0.5));
        assert_eq!(d.get(1, 0), Vec3::ZERO);
    }
}
