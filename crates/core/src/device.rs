//! The GBU device object — the paper's programming model (Sec. V-F).
//!
//! Listing 1 exposes two calls: `GBU_render_image`, which kicks off
//! asynchronous rendering of one frame, and `GBU_check_status`, which
//! polls (or blocks on) completion. The GBU does not synchronise with any
//! CUDA stream; the host uses `check_status` to build the GBU-GPU frame
//! pipeline. This module reproduces those semantics over the cycle-level
//! simulator: `render_image` returns immediately with the frame enqueued,
//! a simulated clock advances via [`Gbu::advance`], and `check_status`
//! polls or blocks exactly like the C++ interface.

use gbu_hw::cache::Policy;
use gbu_hw::{dnb, GbuConfig, GbuRunResult, TileEngine};
use gbu_math::Vec3;
use gbu_render::binning::TileBins;
use gbu_render::{FrameBuffer, Splat2D};
use gbu_scene::Camera;

/// Execution status returned by [`Gbu::check_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GbuStatus {
    /// No frame in flight.
    Idle,
    /// A frame is being rendered.
    InExecution,
}

/// Errors returned by the device interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// `render_image` was called while a frame was still in flight —
    /// the hardware has a single frame context.
    Busy,
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Busy => write!(f, "a frame is already in execution"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A completed frame: the image plus the run's hardware statistics.
#[derive(Debug, Clone)]
pub struct CompletedFrame {
    /// The rendered image.
    pub image: FrameBuffer,
    /// Hardware counters of the run.
    pub run: GbuRunResult,
}

#[derive(Debug)]
struct InFlight {
    result: CompletedFrame,
    completion_cycle: u64,
    /// Full device occupancy of the frame (`max(D&B, Tile PE)` cycles),
    /// fixed at submission.
    occupancy: u64,
}

/// The GBU device.
///
/// # Example
///
/// ```
/// use gbu_core::Gbu;
/// use gbu_hw::GbuConfig;
/// use gbu_math::Vec3;
/// use gbu_render::{binning, preprocess};
/// use gbu_scene::{Camera, Gaussian3D, GaussianScene};
///
/// let mut gbu = Gbu::new(GbuConfig::paper());
/// let cam = Camera::orbit(64, 64, 1.0, Vec3::ZERO, 3.0, 0.0, 0.0);
/// let scene: GaussianScene =
///     std::iter::once(Gaussian3D::isotropic(Vec3::ZERO, 0.2, Vec3::ONE, 0.9)).collect();
/// let (splats, _) = preprocess::project_scene(&scene, &cam);
/// let (bins, _) = binning::bin_splats(&splats, &cam, 16);
///
/// gbu.render_image(&splats, &bins, &cam, Vec3::ZERO).unwrap();
/// // Blocking wait, like GBU_check_status(true).
/// let frame = gbu.wait().expect("frame in flight");
/// assert_eq!(frame.image.width(), 64);
/// ```
#[derive(Debug)]
pub struct Gbu {
    engine: TileEngine,
    policy: Policy,
    clock: u64,
    in_flight: Option<InFlight>,
}

impl Gbu {
    /// Creates a device with the given hardware configuration.
    pub fn new(config: GbuConfig) -> Self {
        Self {
            engine: TileEngine::new(config),
            policy: Policy::ReuseDistance,
            clock: 0,
            in_flight: None,
        }
    }

    /// Overrides the reuse-cache replacement policy (for ablations).
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// The hardware configuration.
    pub fn config(&self) -> &GbuConfig {
        &self.engine.config
    }

    /// Current simulated cycle.
    pub fn cycle(&self) -> u64 {
        self.clock
    }

    /// `GBU_render_image`: starts rendering one frame from preprocessed,
    /// depth-sorted inputs (the outputs of Rendering Steps ❶/❷).
    ///
    /// Returns immediately; completion is observed through
    /// [`Gbu::check_status`] / [`Gbu::wait`].
    ///
    /// # Errors
    ///
    /// [`DeviceError::Busy`] when a frame is already in execution.
    pub fn render_image(
        &mut self,
        splats: &[Splat2D],
        bins: &TileBins,
        camera: &Camera,
        background: Vec3,
    ) -> Result<(), DeviceError> {
        self.start_frame(splats, bins, camera, background, false)
    }

    /// [`Gbu::render_image`] for one shard of a multi-device frame:
    /// `bins` has been restricted to the shard's tile rows
    /// (`gbu_render::shard::ShardPlan::shard_bins`), so the device
    /// executes — and charges DRAM feature traffic and D&B cycles for —
    /// only that tile range (`gbu_hw::dnb::run_scoped`). Rows outside the
    /// shard render as background; the cluster host merges the partial
    /// frame buffers.
    ///
    /// # Errors
    ///
    /// [`DeviceError::Busy`] when a frame is already in execution.
    pub fn render_scoped(
        &mut self,
        splats: &[Splat2D],
        bins: &TileBins,
        camera: &Camera,
        background: Vec3,
    ) -> Result<(), DeviceError> {
        self.start_frame(splats, bins, camera, background, true)
    }

    fn start_frame(
        &mut self,
        splats: &[Splat2D],
        bins: &TileBins,
        camera: &Camera,
        background: Vec3,
        scoped: bool,
    ) -> Result<(), DeviceError> {
        if self.in_flight.is_some() {
            return Err(DeviceError::Busy);
        }
        let d = if scoped {
            dnb::run_scoped(splats, bins, &self.engine.config)
        } else {
            dnb::run(splats, bins, &self.engine.config)
        };
        let run = self.engine.render(splats, &d, bins, camera, background, self.policy);
        // Chunk-level pipeline (Fig. 13 bottom): D&B overlaps the Tile PE,
        // so the frame occupies max(D&B, Tile PE) cycles.
        let duration = d.cycles.max(run.compute_cycles);
        self.in_flight = Some(InFlight {
            result: CompletedFrame { image: run.image.clone(), run },
            completion_cycle: self.clock + duration,
            occupancy: duration,
        });
        Ok(())
    }

    /// Advances the simulated clock (models GPU-side work happening while
    /// the GBU renders).
    pub fn advance(&mut self, cycles: u64) {
        self.clock += cycles;
    }

    /// Device cycles left until the in-flight frame completes (`None` when
    /// idle, `Some(0)` when finished but not yet collected).
    ///
    /// Multi-device hosts (`gbu_serve::DevicePool`) use this to find the
    /// next completion event without collecting the frame.
    pub fn in_flight_remaining(&self) -> Option<u64> {
        self.in_flight.as_ref().map(|f| f.completion_cycle.saturating_sub(self.clock))
    }

    /// Off-chip feature traffic (bytes) of the in-flight frame — the
    /// device's share of DRAM bandwidth while it renders. `None` when idle.
    pub fn in_flight_dram_bytes(&self) -> Option<u64> {
        self.in_flight.as_ref().map(|f| f.result.run.dram_bytes)
    }

    /// Full device occupancy (`max(D&B, Tile PE)` cycles) of the
    /// in-flight frame, independent of how far it has progressed —
    /// `None` when idle. Execution backends use this to record what a
    /// frame (or one shard of it) actually costs in device cycles, e.g.
    /// as the measured-service feedback behind
    /// `gbu_render::shard::ShardStrategy::Measured`.
    pub fn in_flight_occupancy(&self) -> Option<u64> {
        self.in_flight.as_ref().map(|f| f.occupancy)
    }

    /// Aborts the in-flight frame, if any, discarding its result and
    /// freeing the frame context immediately — the preemption hook a
    /// serving host uses to cancel work whose deadline already passed or
    /// whose client detached. Returns whether a frame was cancelled.
    ///
    /// Safe to call on an idle device (a no-op returning `false`), and
    /// safe to call on a frame that has finished but was not yet
    /// collected (the result is discarded). The clock is not moved.
    pub fn cancel_in_flight(&mut self) -> bool {
        self.in_flight.take().is_some()
    }

    /// `GBU_check_status(blocking = false)`: polls the execution status.
    pub fn check_status(&mut self) -> GbuStatus {
        match &self.in_flight {
            Some(f) if self.clock < f.completion_cycle => GbuStatus::InExecution,
            Some(_) => GbuStatus::Idle, // finished; frame ready to collect
            None => GbuStatus::Idle,
        }
    }

    /// Collects the completed frame if the in-flight frame has finished.
    pub fn try_collect(&mut self) -> Option<CompletedFrame> {
        match &self.in_flight {
            Some(f) if self.clock >= f.completion_cycle => {
                let f = self.in_flight.take().expect("checked above");
                Some(f.result)
            }
            _ => None,
        }
    }

    /// `GBU_check_status(blocking = true)`: blocks (advances the clock to
    /// the completion cycle) and returns the frame, or `None` when no
    /// frame is in flight.
    pub fn wait(&mut self) -> Option<CompletedFrame> {
        let completion = self.in_flight.as_ref()?.completion_cycle;
        self.clock = self.clock.max(completion);
        self.try_collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbu_render::{binning, preprocess};
    use gbu_scene::{Gaussian3D, GaussianScene};

    fn inputs() -> (Vec<Splat2D>, TileBins, Camera) {
        let cam = Camera::orbit(64, 64, 1.0, Vec3::ZERO, 3.0, 0.0, 0.0);
        let scene: GaussianScene = (0..20)
            .map(|i| {
                let a = i as f32 * 0.5;
                Gaussian3D::isotropic(
                    Vec3::new(a.cos() * 0.5, a.sin() * 0.4, 0.0),
                    0.06,
                    Vec3::splat(0.7),
                    0.8,
                )
            })
            .collect();
        let (splats, _) = preprocess::project_scene(&scene, &cam);
        let (bins, _) = binning::bin_splats(&splats, &cam, 16);
        (splats, bins, cam)
    }

    #[test]
    fn render_is_asynchronous() {
        let (splats, bins, cam) = inputs();
        let mut gbu = Gbu::new(GbuConfig::paper());
        gbu.render_image(&splats, &bins, &cam, Vec3::ZERO).unwrap();
        assert_eq!(gbu.check_status(), GbuStatus::InExecution);
        assert!(gbu.try_collect().is_none(), "not finished yet");
        let frame = gbu.wait().expect("frame in flight");
        assert!(frame.run.compute_cycles > 0);
        assert_eq!(gbu.check_status(), GbuStatus::Idle);
    }

    #[test]
    fn double_submit_is_rejected() {
        let (splats, bins, cam) = inputs();
        let mut gbu = Gbu::new(GbuConfig::paper());
        gbu.render_image(&splats, &bins, &cam, Vec3::ZERO).unwrap();
        let err = gbu.render_image(&splats, &bins, &cam, Vec3::ZERO).unwrap_err();
        assert_eq!(err, DeviceError::Busy);
        gbu.wait();
        // After completion a new frame is accepted.
        gbu.render_image(&splats, &bins, &cam, Vec3::ZERO).unwrap();
    }

    #[test]
    fn polling_observes_completion_after_advance() {
        let (splats, bins, cam) = inputs();
        let mut gbu = Gbu::new(GbuConfig::paper());
        gbu.render_image(&splats, &bins, &cam, Vec3::ZERO).unwrap();
        // Advance far beyond any plausible frame duration.
        gbu.advance(u64::MAX / 2);
        assert_eq!(gbu.check_status(), GbuStatus::Idle);
        assert!(gbu.try_collect().is_some());
    }

    #[test]
    fn in_flight_accessors_track_progress() {
        let (splats, bins, cam) = inputs();
        let mut gbu = Gbu::new(GbuConfig::paper());
        assert_eq!(gbu.in_flight_remaining(), None);
        assert_eq!(gbu.in_flight_dram_bytes(), None);
        gbu.render_image(&splats, &bins, &cam, Vec3::ZERO).unwrap();
        let total = gbu.in_flight_remaining().expect("frame in flight");
        assert!(total > 0);
        assert_eq!(gbu.in_flight_occupancy(), Some(total));
        let bytes = gbu.in_flight_dram_bytes().expect("frame in flight");
        assert!(bytes > 0);
        gbu.advance(total / 2);
        assert_eq!(gbu.in_flight_remaining(), Some(total - total / 2));
        assert_eq!(gbu.in_flight_occupancy(), Some(total), "occupancy is fixed at submit");
        gbu.advance(total); // overshoot saturates at zero
        assert_eq!(gbu.in_flight_remaining(), Some(0));
        assert!(gbu.try_collect().is_some());
        assert_eq!(gbu.in_flight_remaining(), None);
    }

    #[test]
    fn cancel_in_flight_is_noop_safe() {
        let (splats, bins, cam) = inputs();
        let mut gbu = Gbu::new(GbuConfig::paper());
        // Idle device: cancelling is a no-op.
        assert!(!gbu.cancel_in_flight());
        assert_eq!(gbu.check_status(), GbuStatus::Idle);
        // In-flight frame: cancelled, context freed, clock untouched.
        gbu.render_image(&splats, &bins, &cam, Vec3::ZERO).unwrap();
        let clock = gbu.cycle();
        assert!(gbu.cancel_in_flight());
        assert_eq!(gbu.cycle(), clock);
        assert_eq!(gbu.check_status(), GbuStatus::Idle);
        assert!(gbu.try_collect().is_none(), "cancelled result is discarded");
        // The freed context accepts a new frame immediately.
        gbu.render_image(&splats, &bins, &cam, Vec3::ZERO).unwrap();
        assert!(gbu.wait().is_some());
    }

    #[test]
    fn wait_on_idle_device_is_none() {
        let mut gbu = Gbu::new(GbuConfig::paper());
        assert!(gbu.wait().is_none());
        assert_eq!(gbu.check_status(), GbuStatus::Idle);
    }

    #[test]
    fn completed_image_matches_direct_engine_run() {
        let (splats, bins, cam) = inputs();
        let cfg = GbuConfig::paper();
        let mut gbu = Gbu::new(cfg.clone());
        gbu.render_image(&splats, &bins, &cam, Vec3::ZERO).unwrap();
        let frame = gbu.wait().unwrap();
        let d = gbu_hw::dnb::run(&splats, &bins, &cfg);
        let direct = TileEngine::new(cfg).render(
            &splats,
            &d,
            &bins,
            &cam,
            Vec3::ZERO,
            Policy::ReuseDistance,
        );
        assert_eq!(frame.image.max_abs_diff(&direct.image), 0.0);
    }
}
