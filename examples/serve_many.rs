//! serve_many: dozens of heterogeneous AR/VR sessions on a GBU pool.
//!
//! Builds a 24-session workload — 18 synthetic clients plus 6 dataset
//! clients covering all three application types (static scene, dynamic
//! scene, avatar via `gbu_core::apps`) — and serves it across two pool
//! sizes under all three scheduling policies, printing throughput,
//! latency percentiles, deadline-miss rate and utilization for each run.
//! Uses the batch `run_workload` wrapper; see `serve_live` for the
//! reactive host-loop API (step_until / submit_frame / attach/detach).
//!
//! Run with: `cargo run --release --example serve_many`

use gbu_core::reports::{fmt_f, fmt_pct, table};
use gbu_hw::GbuConfig;
use gbu_serve::{run_workload, workload, Policy, ServeConfig};

const SYNTHETIC_SESSIONS: usize = 18;
const DATASET_SESSIONS: usize = 6;
const FRAMES: u32 = 12;
/// Offered load vs pool capacity — just past saturation, where the
/// scheduling policy decides which deadlines survive.
const UTILIZATION: f64 = 1.15;

fn main() {
    let mut specs = workload::synthetic_mix(SYNTHETIC_SESSIONS, FRAMES);
    specs.extend(workload::dataset_mix(DATASET_SESSIONS, FRAMES));
    let n = specs.len();
    println!(
        "preparing {n} sessions ({SYNTHETIC_SESSIONS} synthetic + {DATASET_SESSIONS} dataset: \
         static/dynamic/avatar) ..."
    );
    let sessions = workload::prepare_all(specs, &GbuConfig::paper());
    let mean_kcycles: f64 =
        sessions.iter().map(|s| s.mean_frame_cycles()).sum::<f64>() / n as f64 / 1e3;
    println!("mean frame cost {mean_kcycles:.0} kcycles; target utilization {UTILIZATION}\n");

    let mut rows = Vec::new();
    for devices in [2usize, 4] {
        for policy in Policy::all() {
            let cfg = ServeConfig { devices, policy, ..ServeConfig::default() };
            let report = run_workload(cfg, &sessions, UTILIZATION);
            rows.push(vec![
                devices.to_string(),
                report.policy.clone(),
                report.completed.to_string(),
                report.rejected.to_string(),
                fmt_f(report.throughput_fps, 0),
                fmt_f(report.p50_latency_ms, 1),
                fmt_f(report.p95_latency_ms, 1),
                fmt_f(report.p99_latency_ms, 1),
                fmt_pct(report.deadline_miss_rate),
                fmt_pct(report.device_utilization),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["GBUs", "policy", "done", "rej", "fps", "p50 ms", "p95 ms", "p99 ms", "miss", "util"],
            &rows
        )
    );

    // Per-session view of the most interesting run: EDF on the small pool.
    let cfg = ServeConfig { devices: 2, policy: Policy::Edf, ..ServeConfig::default() };
    let report = run_workload(cfg, &sessions, UTILIZATION);
    let mut rows = Vec::new();
    for s in report.sessions.iter().take(8) {
        rows.push(vec![
            s.name.clone(),
            format!("{:.0} Hz", s.qos_hz),
            s.completed.to_string(),
            s.missed.to_string(),
            fmt_f(s.achieved_fps, 1),
            fmt_f(s.p95_latency_ms, 1),
        ]);
    }
    println!("first sessions under EDF on 2 GBUs:");
    println!("{}", table(&["session", "qos", "done", "missed", "fps", "p95 ms"], &rows));
    println!("(serving {} sessions total; see BENCH_serve.json via `repro serve` for sweeps,", n);
    println!(" and `cargo run --release --example serve_live` for the reactive API demo)");
}
