//! Microscope on the IRSS dataflow: trace the two-step coordinate
//! transformation and the row-marching procedure on a single 2D Gaussian
//! (Figs. 7 and 8 of the paper).
//!
//! Run with: `cargo run --release --example irss_vs_pfs`

use gbu_math::{Sym2, Vec2, Vec3};
use gbu_render::irss::{IrssSplat, RowOutcome};
use gbu_render::preprocess::pixel_center;
use gbu_render::Splat2D;

fn main() {
    let opacity = 0.85f32;
    let conic = Sym2::new(0.12, 0.07, 0.28);
    let splat = Splat2D {
        mean: Vec2::new(9.0, 7.5),
        conic,
        cov: conic.inverse().expect("positive definite"),
        color: Vec3::ONE,
        opacity,
        depth: 1.0,
        threshold: 2.0 * (opacity * 255.0f32).ln(),
        source: 0,
    };
    let isp = IrssSplat::new(&splat);

    println!("conic Sigma*^-1 = {}", splat.conic);
    println!("truncation threshold Th = {:.2}", splat.threshold);
    println!("after the two-step transform: dx'' = {:.4} (dy'' = 0 by construction)\n", isp.dx);

    // Verify the transformation preserves Eq. 7 exactly at a few pixels.
    for &(x, y) in &[(9u32, 7u32), (12, 6), (4, 9)] {
        let p = pixel_center(x, y);
        let q_direct = splat.q_at(p);
        let q_irss = isp.transform_point(p).length_squared();
        println!("pixel ({x:>2},{y:>2}): q_direct = {q_direct:.5}, q_irss = {q_irss:.5}");
    }

    println!("\nrow-by-row IRSS processing of a 16x16 tile (# = shaded fragment):");
    let mut pfs_evals = 0u32;
    let mut irss_evals = 0u32;
    for y in 0..16 {
        pfs_evals += 16; // PFS evaluates every pixel of every row
        match isp.row_outcome(y, 0, 16) {
            RowOutcome::SkippedY => println!("  row {y:>2}: [skipped: y''^2 > Th]"),
            RowOutcome::Miss { .. } => println!("  row {y:>2}: [miss: no intersection]"),
            RowOutcome::Span(span) => {
                let mut cells = ['.'; 16];
                let cost = isp.march(&span, 16, |x, _| cells[x as usize] = '#');
                irss_evals += cost.evaluated;
                println!(
                    "  row {y:>2}: {}  (first fragment at x = {}, {} search iters)",
                    cells.iter().collect::<String>(),
                    span.first_x,
                    span.search_iters
                );
            }
        }
    }
    println!(
        "\nfragment evaluations: PFS {pfs_evals}, IRSS {irss_evals} ({:.0}% skipped)",
        100.0 * (1.0 - irss_evals as f32 / pfs_evals as f32)
    );
}
