//! serve_live: a simulated host loop on the reactive serving API.
//!
//! Attaches 8 heterogeneous AR/VR sessions to a 2-GBU pool, drives the
//! engine open-loop in 1 ms slices (`step_until`), pushes one manual
//! frame through the non-blocking `submit_frame` future, detaches 2
//! sessions mid-run, and prints the typed per-event trace — the
//! lifecycle a real client driver (or RPC frontend) would react to.
//!
//! Deadline-aware serving is on: admission rejects provably-unmeetable
//! frames (`reject_unmeetable`) and the deadline-drop pass cancels
//! queued frames that became hopeless (`drop_unmeetable`).
//!
//! Run with: `cargo run --release --example serve_live`

use gbu_core::reports::{fmt_f, fmt_pct, table};
use gbu_hw::GbuConfig;
use gbu_serve::{
    calibrated_clock_ghz, workload, FrameStatus, Policy, ServeConfig, ServeEngine, ServeEvent,
};

const SESSIONS: usize = 8;
const DETACHED: usize = 2;
const FRAMES: u32 = 10;
const DEVICES: usize = 2;
/// Offered load vs pool capacity — past saturation so rejections and
/// deadline drops actually appear in the trace.
const UTILIZATION: f64 = 1.3;

fn main() {
    println!("preparing {SESSIONS} sessions ...");
    let sessions =
        workload::prepare_all(workload::synthetic_mix(SESSIONS, FRAMES), &GbuConfig::paper());

    let mut cfg = ServeConfig {
        devices: DEVICES,
        policy: Policy::Edf,
        drop_unmeetable: true,
        ..ServeConfig::default()
    };
    cfg.admission.reject_unmeetable = true;
    cfg.gbu.clock_ghz = calibrated_clock_ghz(&sessions, DEVICES, UTILIZATION);
    let cycles_per_ms = (cfg.gbu.clock_ghz * 1e6).max(1.0) as u64;
    println!(
        "clock {:.4} GHz -> 1 ms slice = {} cycles; EDF on {DEVICES} GBUs at {UTILIZATION}x load\n",
        cfg.gbu.clock_ghz, cycles_per_ms
    );

    let mut engine = ServeEngine::new(cfg);
    let ids: Vec<_> = sessions.into_iter().map(|s| engine.attach_session(s)).collect();
    let names: Vec<String> =
        ids.iter().map(|&id| engine.session_name(id).expect("just attached").to_string()).collect();

    // One manually pushed frame on top of session 0's QoS timer: the
    // non-blocking submission returns a future we poll as the loop runs.
    let pushed = engine.handle().submit_frame(ids[0], 0);
    println!("pushed one extra frame for {}: future {pushed:?} -> {:?}\n", names[0], {
        engine.poll(pushed)
    });

    let mut ms = 0u64;
    let mut printed_pushed = false;
    while !engine.is_drained() {
        ms += 1;
        let events = engine.step_until(ms * cycles_per_ms);
        for e in &events {
            print_event(e, &names, cycles_per_ms);
        }
        if !printed_pushed && matches!(engine.poll(pushed), FrameStatus::Completed { .. }) {
            println!("        -> pushed future {pushed:?} resolved: {:?}", engine.poll(pushed));
            printed_pushed = true;
        }
        // Two clients leave a third of the way in; their queued and
        // in-flight frames are cancelled and their timers stop.
        if ms == u64::from(FRAMES) * 1000 / (3 * 72) {
            for id in ids.iter().take(DETACHED) {
                engine.detach_session(*id);
                println!("[{ms:>3} ms] ---- detach {} ({id}) ----", names[id.index()]);
            }
        }
    }
    engine.finish();

    let report = engine.report();
    println!("\nrun drained after {ms} ms of host-loop slices");
    println!(
        "completed {} / rejected {} (queue_full {}, unmeetable {}) / dropped {} \
         (deadline {}, detached {})",
        report.completed,
        report.rejected,
        report.reject_reasons.queue_full,
        report.reject_reasons.unmeetable,
        report.dropped,
        report.drop_reasons.deadline,
        report.drop_reasons.session_detached,
    );
    let mut rows = Vec::new();
    for s in &report.sessions {
        rows.push(vec![
            s.name.clone(),
            format!("{:.0} Hz", s.qos_hz),
            s.generated.to_string(),
            s.completed.to_string(),
            s.rejected.to_string(),
            s.dropped.to_string(),
            s.missed.to_string(),
            fmt_f(s.p95_latency_ms, 2),
        ]);
    }
    println!(
        "{}",
        table(&["session", "qos", "gen", "done", "rej", "drop", "missed", "p95 ms"], &rows)
    );
    println!(
        "throughput {} fps, p99 {} ms, miss rate {}, utilization {}",
        fmt_f(report.throughput_fps, 0),
        fmt_f(report.p99_latency_ms, 2),
        fmt_pct(report.deadline_miss_rate),
        fmt_pct(report.device_utilization),
    );
}

fn print_event(e: &ServeEvent, names: &[String], cycles_per_ms: u64) {
    let ms = e.at() / cycles_per_ms;
    let name = e.session().map_or("-", |s| names[s.index()].as_str());
    match e {
        ServeEvent::Admitted { frame, .. } => {
            println!("[{ms:>3} ms] admitted  {frame} ({name})");
        }
        ServeEvent::Rejected { frame, reason, .. } => {
            println!("[{ms:>3} ms] rejected  {frame} ({name}): {}", reason.label());
        }
        ServeEvent::Started { frame, device, .. } => {
            println!("[{ms:>3} ms] started   {frame} ({name}) on GBU {device}");
        }
        ServeEvent::ShardCompleted { frame, shard, lane, .. } => {
            // Only sharded sessions (cluster backend) emit these; this
            // demo serves unsharded clients — see serve_cluster.rs.
            println!("[{ms:>3} ms] shard     {frame}#{shard} ({name}) landed on lane {lane}");
        }
        ServeEvent::Completed { frame, latency_cycles, missed, .. } => {
            let lat_ms = *latency_cycles as f64 / cycles_per_ms as f64;
            let verdict = if *missed { "MISSED" } else { "on time" };
            println!("[{ms:>3} ms] completed {frame} ({name}) in {lat_ms:.2} ms, {verdict}");
        }
        ServeEvent::Dropped { frame, reason, .. } => {
            println!("[{ms:>3} ms] dropped   {frame} ({name}): {}", reason.label());
        }
        ServeEvent::Requeued { frame, reason, .. } => {
            println!("[{ms:>3} ms] requeued  {frame} ({name}): {}", reason.label());
        }
        ServeEvent::SessionMigrated { from, to, .. } => {
            println!("[{ms:>3} ms] migrated  {name}: lane {from} -> lane {to}");
        }
        ServeEvent::Degraded { frame, level, .. } => {
            println!("[{ms:>3} ms] degraded  {frame} ({name}) to ladder rung {level}");
        }
        ServeEvent::LaneDown { lane, .. } => println!("[{ms:>3} ms] lane {lane} DOWN"),
        ServeEvent::LaneUp { lane, generation, .. } => {
            println!("[{ms:>3} ms] lane {lane} UP (generation {generation})");
        }
    }
}
