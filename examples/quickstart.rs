//! Quickstart: build a scene, render it through both dataflows, submit it
//! to the GBU device, and compare the results.
//!
//! Run with: `cargo run --release --example quickstart`

use gbu_core::Gbu;
use gbu_hw::GbuConfig;
use gbu_math::Vec3;
use gbu_render::{binning, metrics, preprocess, render_irss, render_pfs, RenderConfig};
use gbu_scene::synth::SceneBuilder;
use gbu_scene::Camera;

fn main() {
    // 1. A small synthetic scene: an object cloud over a ground plane.
    let scene = SceneBuilder::new(7)
        .ellipsoid_cloud(
            Vec3::new(0.0, 0.2, 0.0),
            Vec3::splat(0.8),
            4000,
            Vec3::new(0.8, 0.4, 0.2),
            0.15,
        )
        .ground_plane(-0.5, 2.0, 1500, Vec3::new(0.3, 0.5, 0.3))
        .build();
    let camera = Camera::orbit(320, 240, 0.9, Vec3::ZERO, 4.0, 0.4, 0.3);
    println!("scene: {} Gaussians, camera {}x{}", scene.len(), camera.width, camera.height);

    // 2. Render with the reference PFS dataflow and the paper's IRSS
    //    dataflow; they must produce the same image with far fewer
    //    fragment evaluations.
    let cfg = RenderConfig::default();
    let pfs = render_pfs(&scene, &camera, &cfg);
    let irss = render_irss(&scene, &camera, &cfg);
    println!(
        "PFS : {:>12} fragments evaluated ({:.1} FLOPs/fragment)",
        pfs.blend.fragments_evaluated,
        pfs.blend.q_flops_per_fragment()
    );
    println!(
        "IRSS: {:>12} fragments evaluated ({:.1} FLOPs/fragment)",
        irss.blend.fragments_evaluated,
        irss.blend.q_flops_per_fragment()
    );
    println!(
        "identical images? max|diff| = {:.2e}, PSNR = {:.1} dB",
        pfs.image.max_abs_diff(&irss.image),
        metrics::psnr(&pfs.image, &irss.image)
    );

    // 3. Drive the GBU device through the paper's programming model
    //    (Listing 1): submit, poll, block.
    let (splats, _) = preprocess::project_scene(&scene, &camera);
    let (bins, _) = binning::bin_splats(&splats, &camera, cfg.tile_size);
    let mut gbu = Gbu::new(GbuConfig::paper());
    gbu.render_image(&splats, &bins, &camera, Vec3::ZERO).expect("device idle");
    println!("GBU status after submit: {:?}", gbu.check_status());
    let frame = gbu.wait().expect("frame in flight");
    println!(
        "GBU frame: {} cycles, cache hit rate {:.1}%, {} KB fetched from DRAM",
        frame.run.compute_cycles,
        frame.run.cache.hit_rate() * 100.0,
        frame.run.dram_bytes / 1024
    );
    println!(
        "GBU (FP16) vs software (FP32): PSNR = {:.1} dB",
        metrics::psnr(&pfs.image, &frame.image)
    );

    // 4. Save the image so you can look at it — under bench_out/ like
    //    the bench smokes, so example runs never litter the repo root.
    std::fs::create_dir_all("bench_out").expect("create bench_out/");
    std::fs::write("bench_out/quickstart.ppm", frame.image.to_ppm()).expect("write ppm");
    println!("wrote bench_out/quickstart.ppm");
}
