//! Avatar pipeline: pose a skinned Gaussian avatar through a walk cycle
//! and render it (the SplattingAvatar-style application of Sec. II-C).
//!
//! Run with: `cargo run --release --example avatar_animation`

use gbu_math::Vec3;
use gbu_render::{render_irss, RenderConfig};
use gbu_scene::avatar::Pose;
use gbu_scene::{DatasetScene, ScaleProfile};

fn main() {
    let ds = DatasetScene::by_name("male-3").expect("registry scene");
    let avatar = ds.build_avatar(ScaleProfile::Test);
    let camera = ds.camera(ScaleProfile::Test);
    println!(
        "avatar '{}': {} skinned Gaussians on a {}-joint skeleton",
        ds.name,
        avatar.len(),
        avatar.skeleton.len()
    );

    let cfg = RenderConfig::default();
    for frame in 0..6 {
        let phase = frame as f32 * std::f32::consts::TAU / 6.0;
        // Rendering Step 1 for avatars: forward kinematics + linear blend
        // skinning; Steps 2-3 are the shared pipeline.
        let pose = Pose::walk_cycle(&avatar.skeleton, phase);
        let scene = avatar.pose(&pose);
        let out = render_irss(&scene, &camera, &cfg);
        let (min, max) = scene.bounds().expect("posed scene non-empty");
        println!(
            "phase {phase:.2}: extent y [{:+.2}, {:+.2}], {:>8} fragments",
            min.y, max.y, out.blend.fragments_evaluated
        );
        if frame == 2 {
            std::fs::create_dir_all("bench_out").expect("create bench_out/");
            std::fs::write("bench_out/avatar_frame.ppm", out.image.to_ppm()).expect("write ppm");
        }
    }
    let _ = Vec3::ZERO;
    println!("wrote bench_out/avatar_frame.ppm");
}
