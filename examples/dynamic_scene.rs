//! Dynamic-scene pipeline: sample a 4D Gaussian scene over time and
//! render an animation through the shared pipeline (Sec. II-C).
//!
//! Run with: `cargo run --release --example dynamic_scene`

use gbu_render::{render_irss, RenderConfig};
use gbu_scene::{DatasetScene, ScaleProfile};

fn main() {
    let ds = DatasetScene::by_name("flame_steak").expect("registry scene");
    let dynamic = ds.build_dynamic(ScaleProfile::Test);
    let camera = ds.camera(ScaleProfile::Test);
    println!("4D scene '{}': {} space-time kernels", ds.name, dynamic.len());

    let cfg = RenderConfig::default();
    for frame in 0..8 {
        let t = frame as f32 / 8.0;
        // Rendering Step 1 for dynamic scenes: condition the 4D kernels
        // at time t, then the shared Steps 2-3 run unchanged.
        let scene = dynamic.sample(t, 1.0 / 255.0);
        let out = render_irss(&scene, &camera, &cfg);
        println!(
            "t = {t:.2}: {:>6} live Gaussians, {:>9} fragments, mean pixel {:.3}",
            scene.len(),
            out.blend.fragments_evaluated,
            out.image.mean().y
        );
        if frame == 4 {
            std::fs::create_dir_all("bench_out").expect("create bench_out/");
            std::fs::write("bench_out/dynamic_frame.ppm", out.image.to_ppm()).expect("write ppm");
        }
    }
    println!("wrote bench_out/dynamic_frame.ppm (t = 0.50)");
}
