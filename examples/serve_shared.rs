//! serve_shared: many viewers, few scenes — the shared scene store,
//! cross-session preprocessing reuse and the view-coherence bin cache.
//!
//! Three short acts:
//!
//! 1. **Store**: prepare 12 sessions over 3 scene contents through one
//!    `SceneStore` and show that scenes and prepared views intern (N
//!    sessions pay Steps ❶/❷ roughly K-scene times, not N times).
//! 2. **Reuse**: serve the mix with host Step-❶/❷ charging on, once
//!    per-frame and once with `PrepConfig::share` — co-scheduled frames
//!    over the same shared view pay the projection charge once per
//!    epoch, and the report's `preprocessing` block shows the saved
//!    cycles next to the latency they buy back.
//! 3. **Bin cache**: re-bin a coherent head-pose walk through a
//!    `BinCache` — incremental re-binning is bit-identical to cold
//!    binning while re-sorting only the tiles the motion disturbed.
//!
//! Run with: `cargo run --release --example serve_shared`

use gbu_core::reports::{fmt_f, fmt_pct, table};
use gbu_hw::GbuConfig;
use gbu_math::Vec3;
use gbu_render::{pipeline, BinCache, BinCacheConfig};
use gbu_scene::synth::SceneBuilder;
use gbu_scene::Camera;
use gbu_serve::{
    calibrated_clock_ghz, run_sessions, workload, ExecMode, PrepConfig, QosTarget, SceneStore,
    ServeConfig, SessionContent, SessionSpec,
};

const SCENES: usize = 3;
const SESSIONS_PER_SCENE: usize = 4;
const FRAMES: u32 = 6;

fn main() {
    // --- Act 1: interning through the store ---------------------------
    let specs: Vec<SessionSpec> = (0..SCENES * SESSIONS_PER_SCENE)
        .map(|i| {
            let scene_id = i % SCENES;
            SessionSpec {
                name: format!("viewer-{i}"),
                content: SessionContent::Synthetic {
                    seed: 900 + scene_id as u64,
                    gaussians: 150 + 80 * scene_id,
                },
                qos: [QosTarget::AR_60, QosTarget::VR_72, QosTarget::VR_90][scene_id],
                frames: FRAMES,
                phase: 0.0,
                exec: ExecMode::Unsharded,
            }
        })
        .collect();
    let store = SceneStore::new();
    let sessions = workload::prepare_all_shared(specs, &GbuConfig::paper(), &store);
    let s = store.stats();
    println!(
        "prepared {} sessions over {} interned scenes / {} interned views",
        sessions.len(),
        store.scene_count(),
        store.view_count()
    );
    println!(
        "store lookups: {} hits / {} misses ({}% hit rate) — Steps 1/2 ran {} times, not {}\n",
        s.scene_hits + s.view_hits,
        s.scene_misses + s.view_misses,
        s.hit_rate_pct(),
        s.view_misses,
        sessions.len() * 3,
    );

    // --- Act 2: preprocessing reuse under load ------------------------
    // Scale the modelled host GPU to the synthetic scene size so the
    // Step-1/2 charge keeps a realistic share of the frame period.
    let host = gbu_gpu::GpuConfig {
        sm_count: 1,
        lanes_per_sm: 4,
        clock_ghz: 0.1,
        dram_bw_gbps: 0.05,
        ..gbu_gpu::GpuConfig::orin_nx()
    };
    let clock_ghz = calibrated_clock_ghz(&sessions, 2, 0.6);
    let run = |share: bool| {
        let mut cfg = ServeConfig {
            devices: 2,
            scene_store: Some(store.clone()),
            prep: Some(PrepConfig { share, ..PrepConfig::default() }),
            gpu: host.clone(),
            ..ServeConfig::default()
        };
        cfg.gbu.clock_ghz = clock_ghz;
        run_sessions(cfg, &sessions)
    };
    let mut rows = Vec::new();
    for (label, r) in [("per-frame", run(false)), ("shared", run(true))] {
        rows.push(vec![
            label.to_string(),
            r.completed.to_string(),
            fmt_pct(r.deadline_miss_rate),
            fmt_f(r.p50_latency_ms, 2),
            fmt_f(r.p95_latency_ms, 2),
            r.preprocessing.frames_charged.to_string(),
            r.preprocessing.frames_shared.to_string(),
            fmt_f(r.preprocessing.cycles_saved as f64 / 1e6, 2),
        ]);
    }
    println!(
        "{}",
        table(
            &["prep charge", "done", "miss", "p50 ms", "p95 ms", "charged", "shared", "saved Mcyc"],
            &rows
        )
    );

    // --- Act 3: the view-coherence bin cache --------------------------
    let scene = SceneBuilder::new(7)
        .ellipsoid_cloud(Vec3::ZERO, Vec3::new(0.9, 0.7, 0.9), 2_000, Vec3::new(0.6, 0.5, 0.4), 0.2)
        .build();
    let mut cache = BinCache::new(BinCacheConfig::default());
    let mut identical = true;
    for step in 0..10 {
        let camera = Camera::orbit(320, 192, 0.9, Vec3::ZERO, 3.2, 0.4 + step as f32 * 0.004, 0.15);
        let projected = pipeline::project(&scene, &camera);
        let cold = pipeline::bin(&projected, 16);
        let cached = pipeline::bin_cached(&mut cache, &projected, 16);
        identical &=
            cached.bins.entries == cold.bins.entries && cached.bins.offsets == cold.bins.offsets;
    }
    let c = cache.stats();
    println!(
        "bin cache over a 10-step head-pose walk: {} hits / {} misses, \
         re-sorted {} tiles, re-tiled {} instances — bit-identical to cold binning: {identical}",
        c.hits, c.misses, c.resorted_tiles, c.retiled_instances
    );
}
