//! serve_cluster: mixed-mode serving on the cluster backend.
//!
//! One `ServeEngine` over a 4-lane `ClusterBackend` drives three clients
//! on the same simulated clock through the same submit/poll/step API as
//! single-pool serving:
//!
//! - a heavy VR client sharded 4-wide with `ShardStrategy::Measured`
//!   (each frame replans from the previous frame's measured per-shard
//!   service cycles);
//! - a medium client sharded 2-wide with pair-count cost balancing;
//! - a light unsharded client backfilling whatever lanes are open.
//!
//! Sharded frames report one `ShardCompleted` event per landed shard
//! before their `Completed`; the final report carries per-frame shard
//! imbalance. Lane-aware deadline admission is on: frames whose
//! critical-path lane provably cannot meet the deadline are rejected at
//! submission.
//!
//! The whole run records into a `gbu_telemetry` recorder and exports a
//! Chrome `trace_event` timeline (open it at `chrome://tracing` or
//! <https://ui.perfetto.dev>): per-frame spans cut into queue-wait +
//! service, shard child-spans on their lanes, and per-lane device-busy
//! segments. The output path honours `GBU_TRACE_OUT`, defaulting to
//! `bench_out/serve_cluster.trace.json`.
//!
//! Run with: `cargo run --release --example serve_cluster`

use gbu_core::reports::{fmt_f, fmt_pct, table};
use gbu_hw::GbuConfig;
use gbu_render::shard::ShardStrategy;
use gbu_serve::{
    calibrated_clock_ghz, BackendKind, ExecMode, Policy, QosTarget, ServeConfig, ServeEngine,
    ServeEvent, Session, SessionContent, SessionSpec,
};

const LANES: usize = 4;
const FRAMES: u32 = 6;

fn spec(name: &str, gaussians: usize, phase: f64, exec: ExecMode) -> SessionSpec {
    SessionSpec {
        name: name.into(),
        content: SessionContent::SyntheticHd { seed: 23, gaussians, width: 256, height: 192 },
        qos: QosTarget::VR_72,
        frames: FRAMES,
        phase,
        exec,
    }
}

fn main() {
    println!("preparing 3 mixed-mode sessions ...");
    let specs = [
        spec(
            "vr-heavy-4shard",
            1200,
            0.0,
            ExecMode::Sharded { shards: LANES, strategy: ShardStrategy::Measured },
        ),
        spec(
            "vr-medium-2shard",
            600,
            0.33,
            ExecMode::Sharded { shards: 2, strategy: ShardStrategy::CostBalanced },
        ),
        spec("ar-light-unsharded", 250, 0.66, ExecMode::Unsharded),
    ];
    let sessions: Vec<Session> =
        specs.into_iter().map(|s| Session::prepare(s, &GbuConfig::paper())).collect();

    let recorder = gbu_telemetry::Recorder::enabled(gbu_telemetry::Verbosity::Normal);
    let mut cfg = ServeConfig {
        backend: BackendKind::Cluster { lanes: LANES, devices_per_lane: 1 },
        policy: Policy::Edf,
        telemetry: recorder.clone(),
        ..ServeConfig::default()
    };
    cfg.admission.reject_unmeetable = true;
    // Load the cluster to ~70% of its 4 lanes: the heavy client alone
    // would swamp a single lane.
    cfg.gbu.clock_ghz = calibrated_clock_ghz(&sessions, LANES, 0.7);
    let clock_ghz = cfg.gbu.clock_ghz;
    let cycles_per_ms = (cfg.gbu.clock_ghz * 1e6).max(1.0) as u64;
    println!(
        "clock {:.4} GHz; EDF + lane-aware admission on a {LANES}-lane cluster\n",
        cfg.gbu.clock_ghz
    );

    let mut engine = ServeEngine::new(cfg);
    let ids: Vec<_> = sessions.into_iter().map(|s| engine.attach_session(s)).collect();
    let names: Vec<String> =
        ids.iter().map(|&id| engine.session_name(id).expect("just attached").to_string()).collect();

    let mut ms = 0u64;
    while !engine.is_drained() {
        ms += 1;
        for e in engine.step_until(ms * cycles_per_ms) {
            print_event(&e, &names, cycles_per_ms);
        }
    }
    engine.finish();

    let report = engine.report();
    println!("\ndrained after {ms} ms of 1 ms host-loop slices");
    let mut rows = Vec::new();
    for s in &report.sessions {
        rows.push(vec![
            s.name.clone(),
            s.generated.to_string(),
            s.completed.to_string(),
            s.rejected.to_string(),
            s.missed.to_string(),
            fmt_f(s.p95_latency_ms, 2),
        ]);
    }
    println!("{}", table(&["session", "gen", "done", "rej", "missed", "p95 ms"], &rows));
    if let Some(sharding) = &report.sharding {
        println!(
            "sharded frames: {} (mean imbalance {:.3}, worst {:.3})",
            sharding.frames.len(),
            sharding.mean_imbalance,
            sharding.max_imbalance,
        );
    }
    println!(
        "throughput {} fps, p99 {} ms, miss rate {}, lane utilization {}",
        fmt_f(report.throughput_fps, 0),
        fmt_f(report.p99_latency_ms, 2),
        fmt_pct(report.deadline_miss_rate),
        fmt_pct(report.device_utilization),
    );

    // Export the recorded timeline as a Chrome trace.
    let trace = recorder.snapshot();
    gbu_telemetry::validate(&trace).expect("recorded trace must be well-nested");
    let out = gbu_telemetry::trace_out_path()
        .unwrap_or_else(|| "bench_out/serve_cluster.trace.json".to_string());
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create trace output directory");
    }
    std::fs::write(&out, gbu_telemetry::chrome_trace(&trace, clock_ghz))
        .unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote Chrome trace to {out} ({} spans; open at chrome://tracing)", trace.spans.len());
}

fn print_event(e: &ServeEvent, names: &[String], cycles_per_ms: u64) {
    let ms = e.at() / cycles_per_ms;
    let name = e.session().map_or("-", |s| names[s.index()].as_str());
    match e {
        ServeEvent::Admitted { frame, .. } => println!("[{ms:>3} ms] admitted  {frame} ({name})"),
        ServeEvent::Rejected { frame, reason, .. } => {
            println!("[{ms:>3} ms] rejected  {frame} ({name}): {}", reason.label());
        }
        ServeEvent::Started { frame, device, .. } => {
            println!("[{ms:>3} ms] started   {frame} ({name}) from device {device}");
        }
        ServeEvent::ShardCompleted { frame, shard, lane, service_cycles, .. } => {
            println!(
                "[{ms:>3} ms] shard     {frame}#{shard} ({name}) landed on lane {lane} \
                 after {:.2} ms",
                *service_cycles as f64 / cycles_per_ms as f64
            );
        }
        ServeEvent::Completed { frame, latency_cycles, missed, .. } => {
            let verdict = if *missed { "MISSED" } else { "on time" };
            println!(
                "[{ms:>3} ms] completed {frame} ({name}) in {:.2} ms, {verdict}",
                *latency_cycles as f64 / cycles_per_ms as f64
            );
        }
        ServeEvent::Dropped { frame, reason, .. } => {
            println!("[{ms:>3} ms] dropped   {frame} ({name}): {}", reason.label());
        }
        ServeEvent::Requeued { frame, reason, .. } => {
            println!("[{ms:>3} ms] requeued  {frame} ({name}): {}", reason.label());
        }
        ServeEvent::SessionMigrated { from, to, .. } => {
            println!("[{ms:>3} ms] migrated  {name}: lane {from} -> lane {to}");
        }
        ServeEvent::Degraded { frame, level, .. } => {
            println!("[{ms:>3} ms] degraded  {frame} ({name}) to ladder rung {level}");
        }
        ServeEvent::LaneDown { lane, .. } => println!("[{ms:>3} ms] lane {lane} DOWN"),
        ServeEvent::LaneUp { lane, generation, .. } => {
            println!("[{ms:>3} ms] lane {lane} UP (generation {generation})");
        }
    }
}
