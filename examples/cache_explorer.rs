//! Explore the Gaussian Reuse Cache: sweep capacities and replacement
//! policies over a real frame's feature access trace (Fig. 12 / Fig. 17).
//!
//! Run with: `cargo run --release --example cache_explorer`

use gbu_hw::cache::{simulate_trace, Policy};
use gbu_hw::{dnb, GbuConfig};
use gbu_render::{binning, preprocess, GBU_FEATURE_BYTES};
use gbu_scene::{DatasetScene, ScaleProfile};

fn main() {
    let ds = DatasetScene::by_name("kitchen").expect("registry scene");
    let scene = ds.build_static(ScaleProfile::Test);
    let camera = ds.camera(ScaleProfile::Test);

    // The D&B engine produces the per-tile access trace and the
    // precomputed next-use positions the cache's replacement policy needs.
    let (splats, _) = preprocess::project_scene(&scene, &camera);
    let (bins, _) = binning::bin_splats(&splats, &camera, 16);
    let d = dnb::run(&splats, &bins, &GbuConfig::paper());
    println!("frame: {} splats, {} (tile, Gaussian) accesses", splats.len(), d.access_trace.len());

    println!("\ncapacity sweep (reuse-distance policy):");
    for kib in [0usize, 2, 4, 8, 16, 32, 64] {
        let lines = kib * 1024 / GBU_FEATURE_BYTES as usize;
        let s = simulate_trace(&d.access_trace, lines, Policy::ReuseDistance);
        println!(
            "  {kib:>2} KB ({lines:>4} lines): hit rate {:>5.1}%  -> {:>6} DRAM fetches",
            s.hit_rate() * 100.0,
            s.misses
        );
    }

    println!("\npolicy comparison at the paper's 32 KB:");
    let lines = 32 * 1024 / GBU_FEATURE_BYTES as usize;
    for policy in [Policy::ReuseDistance, Policy::Lru, Policy::Fifo] {
        let s = simulate_trace(&d.access_trace, lines, policy);
        println!("  {policy:?}: hit rate {:.1}%", s.hit_rate() * 100.0);
    }
}
