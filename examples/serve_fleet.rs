//! serve_fleet: fault-injected fleet control on the cluster backend.
//!
//! A 4-lane cluster serves 8 mixed AR/VR sessions while a `FleetPlan`
//! kills lane 0 mid-run and restores it two frame periods later. The
//! fleet controller is fully on: in-flight frames on the dying lane are
//! requeued (never lost), sessions homed there are live-migrated to the
//! coldest surviving lane, the miss-rate autoscaler parks and restores
//! lanes as windowed pressure moves, and lane reservation keeps wide
//! sharded frames from being starved by unsharded backfill during
//! scale-down.
//!
//! The typed event trace shows the whole story: `LaneDown`/`LaneUp`
//! transitions, `Requeued` detours, `SessionMigrated` moves — and the
//! final report proves frame conservation (completed + rejected +
//! dropped == generated) held through the churn.
//!
//! Run with: `cargo run --release --example serve_fleet`

use gbu_core::reports::{fmt_f, fmt_pct, table};
use gbu_hw::GbuConfig;
use gbu_serve::{
    calibrated_clock_ghz, workload, AutoscaleConfig, BackendKind, FleetAction, FleetConfig,
    FleetEvent, FleetPlan, MigrationConfig, Policy, QosTarget, ServeConfig, ServeEngine,
    ServeEvent,
};

const LANES: usize = 4;
const SESSIONS: usize = 8;
const FRAMES: u32 = 8;
/// Offered load vs full-fleet capacity — high enough that losing a lane
/// visibly hurts and the controller has something to do.
const UTILIZATION: f64 = 1.1;

fn main() {
    println!("preparing {SESSIONS} sessions ...");
    let sessions =
        workload::prepare_all(workload::synthetic_mix(SESSIONS, FRAMES), &GbuConfig::paper());

    let clock_ghz = calibrated_clock_ghz(&sessions, LANES, UTILIZATION);
    let period = QosTarget::VR_72.period_cycles(clock_ghz);
    // Lane 0 dies one period in and comes back two periods later.
    let plan = FleetPlan::new(vec![
        FleetEvent { at: period, action: FleetAction::Kill(0) },
        FleetEvent { at: 3 * period, action: FleetAction::Restore(0) },
    ]);
    let mut cfg = ServeConfig {
        backend: BackendKind::Cluster { lanes: LANES, devices_per_lane: 1 },
        policy: Policy::Edf,
        drop_unmeetable: true,
        fleet: FleetConfig {
            plan,
            autoscale: Some(AutoscaleConfig { min_lanes: 2, ..AutoscaleConfig::default() }),
            migration: Some(MigrationConfig { rebalance: true }),
            lane_reservation: true,
        },
        ..ServeConfig::default()
    };
    cfg.gbu.clock_ghz = clock_ghz;
    let cycles_per_ms = (clock_ghz * 1e6).max(1.0) as u64;
    println!(
        "clock {clock_ghz:.4} GHz; {LANES}-lane cluster at {UTILIZATION}x load, \
         lane 0 down [{}, {}) cycles\n",
        period,
        3 * period
    );

    let mut engine = ServeEngine::new(cfg);
    let ids: Vec<_> = sessions.into_iter().map(|s| engine.attach_session(s)).collect();
    let names: Vec<String> =
        ids.iter().map(|&id| engine.session_name(id).expect("just attached").to_string()).collect();

    let mut ms = 0u64;
    while !engine.is_drained() {
        ms += 1;
        for e in engine.step_until(ms * cycles_per_ms) {
            print_event(&e, &names, cycles_per_ms);
        }
    }
    engine.finish();

    let report = engine.report();
    let life = report.lifetime;
    println!("\ndrained after {ms} ms of 1 ms host-loop slices");
    println!(
        "conservation: {} generated == {} completed + {} rejected + {} dropped \
         (plus {} requeue detours, {} migrations, {} lane transitions)",
        life.generated,
        life.completed,
        life.rejected,
        life.dropped,
        life.requeued,
        report.migrated,
        report.lane_churn,
    );
    assert_eq!(
        life.generated,
        life.completed + life.rejected + life.dropped,
        "lane churn must not create or destroy frames"
    );
    let mut rows = Vec::new();
    for s in &report.sessions {
        rows.push(vec![
            s.name.clone(),
            s.generated.to_string(),
            s.completed.to_string(),
            s.dropped.to_string(),
            s.missed.to_string(),
            fmt_f(s.p95_latency_ms, 2),
        ]);
    }
    println!("{}", table(&["session", "gen", "done", "drop", "missed", "p95 ms"], &rows));
    println!(
        "throughput {} fps, p99 {} ms, miss rate {}, lane utilization {}",
        fmt_f(report.throughput_fps, 0),
        fmt_f(report.p99_latency_ms, 2),
        fmt_pct(report.deadline_miss_rate),
        fmt_pct(report.device_utilization),
    );
}

fn print_event(e: &ServeEvent, names: &[String], cycles_per_ms: u64) {
    let ms = e.at() / cycles_per_ms;
    let name = e.session().map_or("-", |s| names[s.index()].as_str());
    match e {
        ServeEvent::Admitted { frame, .. } => println!("[{ms:>3} ms] admitted  {frame} ({name})"),
        ServeEvent::Rejected { frame, reason, .. } => {
            println!("[{ms:>3} ms] rejected  {frame} ({name}): {}", reason.label());
        }
        ServeEvent::Started { frame, device, .. } => {
            println!("[{ms:>3} ms] started   {frame} ({name}) from device {device}");
        }
        ServeEvent::ShardCompleted { frame, shard, lane, .. } => {
            println!("[{ms:>3} ms] shard     {frame}#{shard} ({name}) landed on lane {lane}");
        }
        ServeEvent::Completed { frame, latency_cycles, missed, .. } => {
            let verdict = if *missed { "MISSED" } else { "on time" };
            println!(
                "[{ms:>3} ms] completed {frame} ({name}) in {:.2} ms, {verdict}",
                *latency_cycles as f64 / cycles_per_ms as f64
            );
        }
        ServeEvent::Dropped { frame, reason, .. } => {
            println!("[{ms:>3} ms] dropped   {frame} ({name}): {}", reason.label());
        }
        ServeEvent::Requeued { frame, reason, .. } => {
            println!("[{ms:>3} ms] requeued  {frame} ({name}): {}", reason.label());
        }
        ServeEvent::SessionMigrated { from, to, .. } => {
            println!("[{ms:>3} ms] migrated  {name}: lane {from} -> lane {to}");
        }
        ServeEvent::Degraded { frame, level, .. } => {
            println!("[{ms:>3} ms] degraded  {frame} ({name}) to ladder rung {level}");
        }
        ServeEvent::LaneDown { lane, .. } => println!("[{ms:>3} ms] lane {lane} DOWN"),
        ServeEvent::LaneUp { lane, generation, .. } => {
            println!("[{ms:>3} ms] lane {lane} UP (generation {generation})");
        }
    }
}
