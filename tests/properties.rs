//! Cross-crate property tests: IRSS/PFS equivalence on randomly generated
//! scenes, and cache-policy dominance on renderer-shaped traces.

use gbu_hw::cache::{simulate_trace, Policy};
use gbu_math::Vec3;
use gbu_render::{render_irss, render_pfs, RenderConfig};
use gbu_scene::synth::{SceneBuilder, SynthParams};
use gbu_scene::Camera;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The paper's central correctness claim (Sec. IV-B): IRSS is not an
    /// approximation. Any randomly generated scene must render
    /// identically under both dataflows.
    #[test]
    fn irss_equals_pfs_on_random_scenes(
        seed in 0u64..1000,
        count in 20usize..150,
        sigma in 0.01f32..0.12,
        aniso in 1.0f32..8.0,
        radius in 2.0f32..5.0,
    ) {
        let params = SynthParams {
            scale_median: sigma,
            anisotropy: aniso,
            ..SynthParams::default()
        };
        let scene = SceneBuilder::new(seed)
            .params(params)
            .ellipsoid_cloud(Vec3::ZERO, Vec3::splat(0.8), count, Vec3::new(0.7, 0.5, 0.3), 0.2)
            .build();
        let camera = Camera::orbit(96, 64, 0.9, Vec3::ZERO, radius, seed as f32, 0.2);
        let cfg = RenderConfig::default();
        let pfs = render_pfs(&scene, &camera, &cfg);
        let irss = render_irss(&scene, &camera, &cfg);
        let diff = pfs.image.max_abs_diff(&irss.image);
        prop_assert!(diff < 5e-3, "diff {diff} at seed {seed}");
        prop_assert!(irss.blend.fragments_evaluated <= pfs.blend.fragments_evaluated);
        // Significant fragments agree (same truncation test).
        prop_assert_eq!(pfs.blend.fragments_blended, irss.blend.fragments_blended);
    }

    /// The reuse-distance policy is offline-optimal: it never loses to
    /// LRU or FIFO on any access trace.
    #[test]
    fn reuse_distance_dominates_on_random_traces(
        trace in prop::collection::vec(0u32..64, 10..400),
        capacity in 1usize..32,
    ) {
        let opt = simulate_trace(&trace, capacity, Policy::ReuseDistance);
        let lru = simulate_trace(&trace, capacity, Policy::Lru);
        let fifo = simulate_trace(&trace, capacity, Policy::Fifo);
        prop_assert!(opt.hits >= lru.hits, "OPT {} < LRU {}", opt.hits, lru.hits);
        prop_assert!(opt.hits >= fifo.hits, "OPT {} < FIFO {}", opt.hits, fifo.hits);
    }

    /// Hit rate is monotone in capacity for the optimal policy (the
    /// stack property behind Fig. 17's saturating curve).
    #[test]
    fn optimal_hit_rate_monotone_in_capacity(
        trace in prop::collection::vec(0u32..40, 50..300),
    ) {
        let mut last = -1.0f64;
        for capacity in [1usize, 2, 4, 8, 16, 32] {
            let rate = simulate_trace(&trace, capacity, Policy::ReuseDistance).hit_rate();
            prop_assert!(rate >= last - 1e-12);
            last = rate;
        }
    }
}
