//! Integration test for the serving subsystem: a heterogeneous-QoS
//! workload (16 sessions mixing 60/72/90 Hz clients of different scene
//! weights) across two device-pool sizes and all three scheduler
//! policies. Earliest-deadline-first must strictly beat FCFS on
//! deadline-miss rate — the acceptance criterion of the serving layer.

use gbu_hw::GbuConfig;
use gbu_serve::{run_workload, workload, Policy, ServeConfig, ServeReport};

const SESSIONS: usize = 16;
const FRAMES: u32 = 10;
/// Offered load vs pool capacity: mildly overloaded, so scheduling
/// order actually decides which deadlines are met. (Deeper overload
/// drowns every policy in misses; lighter load lets every policy meet
/// every deadline — either way the policies become indistinguishable.
/// With golden-ratio-staggered arrivals, 1.15 sits in the band where
/// EDF's margin over FCFS is widest.)
const UTILIZATION: f64 = 1.15;

fn run_policy(sessions: &[gbu_serve::Session], devices: usize, policy: Policy) -> ServeReport {
    let cfg = ServeConfig { devices, policy, ..ServeConfig::default() };
    run_workload(cfg, sessions, UTILIZATION)
}

#[test]
fn edf_beats_fcfs_on_heterogeneous_qos() {
    let sessions =
        workload::prepare_all(workload::synthetic_mix(SESSIONS, FRAMES), &GbuConfig::paper());
    assert_eq!(sessions.len(), SESSIONS);

    for devices in [1usize, 2] {
        let fcfs = run_policy(&sessions, devices, Policy::Fcfs);
        let rr = run_policy(&sessions, devices, Policy::RoundRobin);
        let edf = run_policy(&sessions, devices, Policy::Edf);

        for r in [&fcfs, &rr, &edf] {
            eprintln!(
                "devices={} policy={:<12} miss_rate={:.3} completed={} rejected={} p95={:.3}ms util={:.2}",
                devices, r.policy, r.deadline_miss_rate, r.completed, r.rejected,
                r.p95_latency_ms, r.device_utilization
            );
            // Conservation and sanity on every policy.
            assert_eq!(r.generated, SESSIONS * FRAMES as usize);
            assert_eq!(r.completed + r.rejected + r.dropped, r.generated);
            assert!(r.throughput_fps > 0.0);
        }

        assert!(
            edf.deadline_miss_rate < fcfs.deadline_miss_rate,
            "devices={devices}: EDF miss rate {:.3} must be strictly below FCFS {:.3}",
            edf.deadline_miss_rate,
            fcfs.deadline_miss_rate
        );
    }
}

#[test]
fn pool_scaling_relieves_overload() {
    let sessions = workload::prepare_all(workload::synthetic_mix(SESSIONS, 6), &GbuConfig::paper());
    // Calibrate the clock once against a single device, then grow the
    // pool at that fixed clock: misses must not increase with capacity.
    let clock = gbu_serve::calibrated_clock_ghz(&sessions, 1, UTILIZATION);
    let run = |devices: usize| {
        let mut cfg = ServeConfig { devices, policy: Policy::Edf, ..ServeConfig::default() };
        cfg.gbu.clock_ghz = clock;
        gbu_serve::run_sessions(cfg, &sessions)
    };
    let small = run(1);
    let big = run(3);
    eprintln!(
        "pool scaling: 1 device miss={:.3}, 3 devices miss={:.3}",
        small.deadline_miss_rate, big.deadline_miss_rate
    );
    assert!(big.deadline_miss_rate <= small.deadline_miss_rate);
    assert!(big.p95_latency_ms <= small.p95_latency_ms);
}
