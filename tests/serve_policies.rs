//! Integration test for the serving subsystem: a heterogeneous-QoS
//! workload (16 sessions mixing 60/72/90 Hz clients of different scene
//! weights) across two device-pool sizes and all three scheduler
//! policies. Earliest-deadline-first must strictly beat FCFS on
//! deadline-miss rate — the acceptance criterion of the serving layer.

use gbu_hw::GbuConfig;
use gbu_serve::{
    calibrated_clock_ghz, run_workload, workload, ExecMode, Policy, QosTarget, ServeConfig,
    ServeEngine, ServeReport, SessionContent, SessionSpec,
};

const SESSIONS: usize = 16;
const FRAMES: u32 = 10;
/// Offered load vs pool capacity: mildly overloaded, so scheduling
/// order actually decides which deadlines are met. (Deeper overload
/// drowns every policy in misses; lighter load lets every policy meet
/// every deadline — either way the policies become indistinguishable.
/// With golden-ratio-staggered arrivals, 1.15 sits in the band where
/// EDF's margin over FCFS is widest.)
const UTILIZATION: f64 = 1.15;

fn run_policy(sessions: &[gbu_serve::Session], devices: usize, policy: Policy) -> ServeReport {
    let cfg = ServeConfig { devices, policy, ..ServeConfig::default() };
    run_workload(cfg, sessions, UTILIZATION)
}

#[test]
fn edf_beats_fcfs_on_heterogeneous_qos() {
    let sessions =
        workload::prepare_all(workload::synthetic_mix(SESSIONS, FRAMES), &GbuConfig::paper());
    assert_eq!(sessions.len(), SESSIONS);

    for devices in [1usize, 2] {
        let fcfs = run_policy(&sessions, devices, Policy::Fcfs);
        let rr = run_policy(&sessions, devices, Policy::RoundRobin);
        let edf = run_policy(&sessions, devices, Policy::Edf);

        for r in [&fcfs, &rr, &edf] {
            eprintln!(
                "devices={} policy={:<12} miss_rate={:.3} completed={} rejected={} p95={:.3}ms util={:.2}",
                devices, r.policy, r.deadline_miss_rate, r.completed, r.rejected,
                r.p95_latency_ms, r.device_utilization
            );
            // Conservation and sanity on every policy.
            assert_eq!(r.generated, SESSIONS * FRAMES as usize);
            assert_eq!(r.completed + r.rejected + r.dropped, r.generated);
            assert!(r.throughput_fps > 0.0);
        }

        assert!(
            edf.deadline_miss_rate < fcfs.deadline_miss_rate,
            "devices={devices}: EDF miss rate {:.3} must be strictly below FCFS {:.3}",
            edf.deadline_miss_rate,
            fcfs.deadline_miss_rate
        );
    }
}

/// Queue-depth-aware admission (ROADMAP open item): folding the
/// estimated wait behind already-queued work into the meetability check
/// must strictly reduce completed-but-missed frames under overload —
/// depth-blind admission keeps queueing frames whose deadline the queue
/// ahead of them has already spent, burning device time to render them
/// late. Queue-aware admission converts those guaranteed-late
/// completions into up-front rejections (the client can degrade
/// gracefully instead of waiting for a stale frame) and shortens the
/// tail for what is served. Underloaded it must change nothing.
#[test]
fn queue_aware_admission_beats_depth_blind_admission() {
    let sessions =
        workload::prepare_all(workload::synthetic_mix(SESSIONS, FRAMES), &GbuConfig::paper());
    let run = |queue_aware: bool, load: f64| {
        let mut cfg = ServeConfig { devices: 1, policy: Policy::Edf, ..ServeConfig::default() };
        cfg.admission.reject_unmeetable = true;
        cfg.admission.queue_aware = queue_aware;
        run_workload(cfg, &sessions, load)
    };

    // 2x overload: the ready queue stays deep, so the wait estimate bites.
    let blind = run(false, 2.0);
    let aware = run(true, 2.0);
    for r in [&blind, &aware] {
        eprintln!(
            "queue_aware={} missed={} completed={} rejected={} p99={:.3}ms",
            std::ptr::eq(r, &aware),
            r.missed,
            r.completed,
            r.rejected,
            r.p99_latency_ms
        );
        assert_eq!(r.generated, SESSIONS * FRAMES as usize);
        assert_eq!(r.completed + r.rejected + r.dropped, r.generated);
    }
    assert!(
        aware.missed < blind.missed,
        "queue-aware admission must cut completed-but-missed frames: {} vs {}",
        aware.missed,
        blind.missed
    );
    assert!(
        aware.p99_latency_ms <= blind.p99_latency_ms,
        "shorter queues must not stretch the tail: {} vs {}",
        aware.p99_latency_ms,
        blind.p99_latency_ms
    );
    assert!(
        aware.rejected > blind.rejected,
        "the misses have to go somewhere: rejected up front, not served late"
    );

    // Underloaded, the queue is shallow and the estimate must not reject
    // anything the depth-blind check would admit.
    let blind_light = run(false, 0.4);
    let aware_light = run(true, 0.4);
    assert_eq!(aware_light.completed, blind_light.completed);
    assert_eq!(aware_light.rejected, blind_light.rejected);
}

/// In-flight-aware admission (ROADMAP "smarter admission, part 3"): the
/// queue-aware wait estimate sees an *empty* queue the instant after a
/// dispatch, even though the device is mid-frame — at moderate overload
/// that blind spot admits frames whose deadline the executing frame has
/// already spent. Folding `Gbu::in_flight_remaining` into the bound
/// converts those guaranteed-late completions into up-front rejections;
/// underloaded it must change nothing.
#[test]
fn in_flight_aware_admission_tightens_the_bound() {
    let sessions =
        workload::prepare_all(workload::synthetic_mix(SESSIONS, FRAMES), &GbuConfig::paper());
    let run = |in_flight_aware: bool, load: f64| {
        let mut cfg = ServeConfig { devices: 1, policy: Policy::Edf, ..ServeConfig::default() };
        cfg.admission.reject_unmeetable = true;
        cfg.admission.queue_aware = true;
        cfg.admission.in_flight_aware = in_flight_aware;
        run_workload(cfg, &sessions, load)
    };

    // Moderate overload: the queue drains fast (so the queue-aware term
    // is often zero) but the single device is almost always busy — the
    // regime where only the in-flight term can tighten the bound.
    let blind = run(false, 1.4);
    let aware = run(true, 1.4);
    for r in [&blind, &aware] {
        eprintln!(
            "in_flight_aware={} missed={} completed={} rejected={} p99={:.3}ms",
            std::ptr::eq(r, &aware),
            r.missed,
            r.completed,
            r.rejected,
            r.p99_latency_ms
        );
        assert_eq!(r.generated, SESSIONS * FRAMES as usize);
        assert_eq!(r.completed + r.rejected + r.dropped, r.generated);
    }
    assert!(
        aware.missed < blind.missed,
        "in-flight-aware admission must cut completed-but-missed frames: {} vs {}",
        aware.missed,
        blind.missed
    );
    assert!(
        aware.rejected > blind.rejected,
        "the tightened bound rejects what the blind spot admitted: {} vs {}",
        aware.rejected,
        blind.rejected
    );

    // Underloaded, devices idle at admission time: the in-flight term is
    // zero and the decision must be unchanged.
    let blind_light = run(false, 0.4);
    let aware_light = run(true, 0.4);
    assert_eq!(aware_light.completed, blind_light.completed);
    assert_eq!(aware_light.rejected, blind_light.rejected);
}

/// Per-session queue quotas (ROADMAP "smarter admission, part 4"): a
/// client flooding the shared ready queue with pushed frames must not
/// starve its peers. Without a quota, FCFS serves the flood burst first
/// and the timer-driven peers blow their deadlines behind it; with
/// `session_queue_quota`, the flooder is clipped to its quota (rejected
/// as `QuotaExceeded`) while the peers' frames are untouched.
#[test]
fn session_queue_quota_protects_peers_from_a_flooder() {
    const PEERS: usize = 2;
    const PEER_FRAMES: u32 = 8;
    const FLOOD: u32 = 40;
    let peers =
        workload::prepare_all(workload::synthetic_mix(PEERS, PEER_FRAMES), &GbuConfig::paper());
    let run = |quota: Option<usize>| {
        let mut cfg = ServeConfig {
            devices: 1,
            policy: Policy::Fcfs,
            session_queue_quota: quota,
            ..ServeConfig::default()
        };
        // The peers alone underload the device: any peer miss below is
        // the flooder's doing, not capacity.
        cfg.gbu.clock_ghz = calibrated_clock_ghz(&peers, 1, 0.6);
        let mut engine = ServeEngine::new(cfg);
        for s in &peers {
            engine.attach_session(s.clone());
        }
        let flooder = engine.attach_spec(SessionSpec {
            name: "flooder".into(),
            content: SessionContent::Synthetic { seed: 77, gaussians: 90 },
            qos: QosTarget::VR_72,
            frames: 0,
            phase: 0.0,
            exec: ExecMode::Unsharded,
        });
        // One burst up front: everything lands in the queue ahead of the
        // peers' timer frames.
        for v in 0..FLOOD {
            engine.handle().submit_frame(flooder, v);
        }
        engine.drain();
        engine.finish();
        assert!(engine.is_drained());
        engine.report()
    };

    let open = run(None);
    let quota = run(Some(2));
    for r in [&open, &quota] {
        assert_eq!(r.generated, PEERS * PEER_FRAMES as usize + FLOOD as usize);
        assert_eq!(r.completed + r.rejected + r.dropped, r.generated, "conservation");
    }
    let peer_missed = |r: &ServeReport| -> usize {
        r.sessions.iter().take(PEERS).map(|s| s.missed + s.rejected + s.dropped).sum()
    };
    eprintln!(
        "flooding: open peer-failures={} quota peer-failures={} quota-rejects={}",
        peer_missed(&open),
        peer_missed(&quota),
        quota.reject_reasons.quota_exceeded,
    );
    assert!(peer_missed(&open) > 0, "an unbounded flood must hurt the peers");
    assert!(
        peer_missed(&quota) < peer_missed(&open),
        "the quota must shield the peers: {} vs {}",
        peer_missed(&quota),
        peer_missed(&open)
    );
    assert!(quota.reject_reasons.quota_exceeded > 0, "the flooder is clipped");
    assert_eq!(
        quota.sessions[PEERS].rejected, quota.reject_reasons.quota_exceeded,
        "only the flooder pays the quota"
    );
    // The flooder's admitted frames still get served — a quota is
    // backpressure, not a ban.
    assert!(quota.sessions[PEERS].completed > 0);
}

#[test]
fn pool_scaling_relieves_overload() {
    let sessions = workload::prepare_all(workload::synthetic_mix(SESSIONS, 6), &GbuConfig::paper());
    // Calibrate the clock once against a single device, then grow the
    // pool at that fixed clock: misses must not increase with capacity.
    let clock = gbu_serve::calibrated_clock_ghz(&sessions, 1, UTILIZATION);
    let run = |devices: usize| {
        let mut cfg = ServeConfig { devices, policy: Policy::Edf, ..ServeConfig::default() };
        cfg.gbu.clock_ghz = clock;
        gbu_serve::run_sessions(cfg, &sessions)
    };
    let small = run(1);
    let big = run(3);
    eprintln!(
        "pool scaling: 1 device miss={:.3}, 3 devices miss={:.3}",
        small.deadline_miss_rate, big.deadline_miss_rate
    );
    assert!(big.deadline_miss_rate <= small.deadline_miss_rate);
    assert!(big.p95_latency_ms <= small.p95_latency_ms);
}
