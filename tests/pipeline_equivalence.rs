//! Cross-crate integration: the three implementations of Rendering Step ❸
//! (reference PFS, software IRSS, GBU tile engine in FP32) must produce
//! the same image on every application type, and the FP16 GBU datapath
//! must stay within Tab. IV's quality envelope.

use gbu_hw::cache::Policy;
use gbu_hw::{dnb, GbuConfig, TileEngine};
use gbu_math::Vec3;
use gbu_render::{binning, metrics, preprocess, render_irss, render_pfs, RenderConfig};
use gbu_scene::{DatasetScene, ScaleProfile};

fn scene_and_camera(name: &str) -> (gbu_scene::GaussianScene, gbu_scene::Camera) {
    let ds = DatasetScene::by_name(name).expect("registry scene");
    let scenario = gbu_core::apps::FrameScenario::from_dataset(&ds, ScaleProfile::Test);
    (scenario.scene, scenario.camera)
}

#[test]
fn irss_matches_pfs_on_all_application_types() {
    for name in ["bonsai", "flame_steak", "female-4"] {
        let (scene, camera) = scene_and_camera(name);
        let cfg = RenderConfig::default();
        let pfs = render_pfs(&scene, &camera, &cfg);
        let irss = render_irss(&scene, &camera, &cfg);
        let diff = pfs.image.max_abs_diff(&irss.image);
        assert!(diff < 5e-3, "{name}: IRSS diverged from PFS by {diff}");
        // And IRSS must do so with far fewer fragment evaluations.
        assert!(
            irss.blend.fragments_evaluated * 2 < pfs.blend.fragments_evaluated,
            "{name}: IRSS evaluated {} vs PFS {}",
            irss.blend.fragments_evaluated,
            pfs.blend.fragments_evaluated
        );
    }
}

#[test]
fn gbu_fp32_engine_matches_software_exactly() {
    let (scene, camera) = scene_and_camera("bonsai");
    let cfg = RenderConfig::default();
    let sw = render_irss(&scene, &camera, &cfg);

    let hw_cfg = GbuConfig { fp16_datapath: false, ..GbuConfig::paper() };
    let (splats, _) = preprocess::project_scene(&scene, &camera);
    let (bins, _) = binning::bin_splats(&splats, &camera, cfg.tile_size);
    let d = dnb::run(&splats, &bins, &hw_cfg);
    let hw = TileEngine::new(hw_cfg).render(
        &splats,
        &d,
        &bins,
        &camera,
        Vec3::ZERO,
        Policy::ReuseDistance,
    );
    let diff = sw.image.max_abs_diff(&hw.image);
    assert!(diff < 1e-5, "hardware FP32 path diverged by {diff}");
}

#[test]
fn gbu_fp16_quality_within_tab4_envelope() {
    for name in ["bonsai", "flame_steak", "female-4"] {
        let (scene, camera) = scene_and_camera(name);
        let cfg = RenderConfig::default();
        let reference = render_pfs(&scene, &camera, &cfg);

        let hw_cfg = GbuConfig::paper();
        let (splats, _) = preprocess::project_scene(&scene, &camera);
        let (bins, _) = binning::bin_splats(&splats, &camera, cfg.tile_size);
        let d = dnb::run(&splats, &bins, &hw_cfg);
        let hw = TileEngine::new(hw_cfg).render(
            &splats,
            &d,
            &bins,
            &camera,
            Vec3::ZERO,
            Policy::ReuseDistance,
        );
        let psnr = metrics::psnr(&reference.image, &hw.image);
        let ssim = metrics::ssim(&reference.image, &hw.image);
        assert!(psnr > 40.0, "{name}: FP16 PSNR {psnr}");
        assert!(ssim > 0.99, "{name}: FP16 SSIM {ssim}");
    }
}

#[test]
fn blending_is_insensitive_to_gaussian_insertion_order() {
    let (scene, camera) = scene_and_camera("bonsai");
    let mut reversed = scene.clone();
    reversed.gaussians.reverse();
    let cfg = RenderConfig::default();
    let a = render_irss(&scene, &camera, &cfg);
    let b = render_irss(&reversed, &camera, &cfg);
    // Same depth order after sorting => same image up to float
    // associativity at equal depths.
    assert!(a.image.max_abs_diff(&b.image) < 2e-2);
}
