//! Cross-crate integration: the full measurement + system-model stack on
//! every application type, asserting the paper's headline orderings.

use gbu_core::apps::{measure_frame, FrameScenario};
use gbu_core::system::{self, SystemConfig};
use gbu_scene::{DatasetScene, ScaleProfile};

fn ladder_for(name: &str) -> Vec<system::SystemEvaluation> {
    let ds = DatasetScene::by_name(name).expect("registry scene");
    let scenario = FrameScenario::from_dataset(&ds, ScaleProfile::Test);
    let scale = scenario.paper_scale(&ds);
    let cfg = SystemConfig::default();
    let m = measure_frame(&scenario, &cfg.gbu, scale);
    system::evaluate_ladder(&cfg, &m.measurement)
}

#[test]
fn ablation_ladder_is_ordered_on_every_kind() {
    for name in ["counter", "flame_steak", "male-3"] {
        let evals = ladder_for(name);
        assert_eq!(evals.len(), 5);
        for pair in evals.windows(2) {
            assert!(
                pair[1].fps >= pair[0].fps * 0.98,
                "{name}: {} ({:.1}) slower than {} ({:.1})",
                pair[1].design.label(),
                pair[1].fps,
                pair[0].design.label(),
                pair[0].fps
            );
        }
    }
}

#[test]
fn full_system_beats_baseline_substantially() {
    for name in ["counter", "flame_steak", "male-3"] {
        let evals = ladder_for(name);
        let speedup = evals[4].fps / evals[0].fps;
        assert!(speedup > 2.0, "{name}: only {speedup:.2}x");
        // Energy efficiency improves too (Fig. 15).
        assert!(evals[4].energy_j < evals[0].energy_j, "{name}: energy regressed");
    }
}

#[test]
fn gbu_designs_offload_step3_from_gpu() {
    let evals = ladder_for("counter");
    let baseline = &evals[0];
    let full = &evals[4];
    // The GPU's remaining work (steps 1-2) is much smaller than the
    // baseline's total; step 3 now runs on the GBU concurrently.
    assert!(full.step1 + full.step2 < baseline.frame_seconds * 0.5);
    assert!(full.design.uses_gbu());
    assert!(!baseline.design.uses_gbu());
}

#[test]
fn cache_reduces_feature_traffic_end_to_end() {
    let evals = ladder_for("counter");
    let no_cache = &evals[3]; // + D&B engine
    let cached = &evals[4]; // + reuse cache
    assert!(
        cached.step3_dram_bytes < no_cache.step3_dram_bytes * 0.8,
        "cache saved only {:.1}%",
        100.0 * (1.0 - cached.step3_dram_bytes / no_cache.step3_dram_bytes)
    );
}
